//! The cycle-skipping event scheduler behind [`StepMode::EventDriven`].
//!
//! The lockstep engine advances time by ticking every core every cycle; at
//! paper scale (300-cycle memory, 32 cores) almost all of those ticks are
//! idle stall-waiting. The event-driven engine instead keeps an event
//! queue keyed by `(cycle, target)`: whenever a core computes a completion
//! time — instruction-ready (`busy_until`), a write-buffer request arrival
//! or transaction completion, a broadcast-ack deadline, an RMW `Finish`
//! time — it arms a wakeup for *itself* at that cycle; machine-level
//! deliveries (broadcast messages in flight) arm a machine-target wakeup.
//! `Machine::run` jumps `now` straight to the earliest armed cycle and
//! ticks **only the due cores**, in core-id order.
//!
//! # Queue structure
//!
//! The queue is a **calendar wheel** (bucket per cycle modulo the wheel
//! size, with a bitmap for next-event scans) backed by a
//! binary-heap overflow for arms beyond the wheel horizon. Every latency
//! the Table 2 machine can produce (300-cycle memory + mesh traversals)
//! fits the horizon, so in practice arming and draining are O(1) —
//! important because short programs on big machines arm only a few
//! hundred events and the queue must not dominate them. Two invariants
//! keep the wheel exact: every arm is strictly in the future, and the
//! machine visits *every* armed cycle, so a bucket is fully drained at
//! its cycle and never holds entries from two different cycles.
//!
//! # Exactness contract
//!
//! The engine remains **cycle-identical** to lockstep (asserted by
//! `tests/engine_equiv.rs`) because skipped work is provably a no-op:
//!
//! 1. a core's tick can only *act* (mutate state or statistics) at a cycle
//!    it armed for itself — every future deadline is armed when computed,
//!    and a tick that acted arms `now + 1` for the same core whenever its
//!    end-of-tick state demands a next-cycle action (phase-machine
//!    advances, request sends and re-sends, fences over an empty buffer);
//! 2. the one cross-core wait — a read or RMW acquisition blocked on a
//!    *foreign* line lock — re-probes exactly when lockstep's per-cycle
//!    re-poll could first succeed: a lock **release** is the only event
//!    that can unblock it, so blocked cores are ticked whenever an
//!    earlier-id core released a lock in the same cycle, and a
//!    blocked-wakeup ([`Scheduler::wake_blocked`]) is armed for the cycle
//!    after any release;
//! 3. due cores tick in core-id order, so intra-cycle orderings (who sees
//!    an unlock first) are preserved bit-for-bit.
//!
//! [`Scheduler::next_after`] never returns a cycle at or before `now`
//! (time is monotone) nor skips past an armed wakeup — both
//! property-tested in `tests/engine_equiv.rs`.
//!
//! [`StepMode::EventDriven`]: crate::StepMode::EventDriven

use interconnect::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What a scheduled wakeup is waiting for. Purely diagnostic — ordering is
/// by `(cycle, target)` — but counted in [`Scheduler::armed_by_kind`] so
/// tests and benches can see where event pressure comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A core's `busy_until` expires (instruction issue/retire).
    CoreReady,
    /// A write-buffer coherence request arrives at the home directory.
    WbRequestArrival,
    /// An accepted write-buffer transaction completes (slot frees, locks
    /// may release).
    WbCompletion,
    /// The broadcast-ack collection deadline of a §3.2 RMW-address
    /// broadcast.
    BroadcastAcks,
    /// An RMW's read half completes (`RmwPhase::Finish`).
    RmwFinish,
    /// An interconnect message (RMW broadcast or ack) is delivered.
    NetDelivery,
    /// Conservative `now + 1` self-wakeup after a tick that acted:
    /// phase-machine advances and request (re-)sends ride on this.
    Advance,
    /// Wakeup of every lock-blocked core the cycle after a lock release
    /// (the event-time replacement for lockstep's per-cycle lock
    /// re-polling).
    LockRelease,
    /// A futex-sleeping core's resume time (`futex_latency` cycles after
    /// an `Op::FutexWake` dequeued it). Armed by the *waker*; the sleeper
    /// itself arms nothing while asleep.
    FutexWake,
}

impl EventKind {
    /// All kinds, indexable for the per-kind counters.
    pub const ALL: [EventKind; 9] = [
        EventKind::CoreReady,
        EventKind::WbRequestArrival,
        EventKind::WbCompletion,
        EventKind::BroadcastAcks,
        EventKind::RmwFinish,
        EventKind::NetDelivery,
        EventKind::Advance,
        EventKind::LockRelease,
        EventKind::FutexWake,
    ];

    fn index(self) -> usize {
        self as usize
    }
}

/// Wheel size in cycles. Must be a power of two, and comfortably larger
/// than any single latency the machine composes (memory 300 + mesh round
/// trips); longer waits (huge `Compute` bubbles, exotic configs) spill to
/// the overflow heap.
const WHEEL_SIZE: usize = 512;
const WHEEL_MASK: u64 = WHEEL_SIZE as u64 - 1;
const BITMAP_WORDS: usize = WHEEL_SIZE / 64;

/// Heap targets: core ids, then the two machine-level sentinels. The
/// sentinel encodings sort *after* every real core id, so due cores come
/// first at a given cycle.
const TARGET_BLOCKED: u32 = u32::MAX - 1;
const TARGET_MACHINE: u32 = u32::MAX;

/// What [`Scheduler::drain_due`] found armed at the drained cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Due {
    /// A blocked-wakeup was armed: every lock-blocked core must re-probe
    /// this cycle.
    pub wake_blocked: bool,
    /// A machine-level event (network delivery) was armed.
    pub machine: bool,
}

/// Sentinel "no entry" index for the bucket lists.
const NIL: u32 = u32::MAX;

/// A pooled bucket-list node.
#[derive(Debug, Clone, Copy)]
struct Slot {
    at: Cycle,
    target: u32,
    next: u32,
}

/// Calendar-wheel event queue keyed by `(cycle, target)`.
///
/// Buckets are intrusive singly-linked lists over one growable slot pool
/// (plus a free list), so arming allocates nothing after the pool warms
/// up — the queue must stay cheap for short programs on big machines
/// that arm only a few hundred events.
///
/// Arming is idempotent and conservative: duplicate events are permitted
/// (they drain as no-op wakeups), missing events are not — see the module
/// docs for the exactness contract. A scheduler constructed disabled
/// ([`Scheduler::new(false)`](Scheduler::new)) ignores all arms; the
/// lockstep engine uses one so `Core` can arm unconditionally without
/// filling a queue nobody drains.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Head slot index per cycle modulo [`WHEEL_SIZE`]; every entry of a
    /// bucket holds the same cycle (see module docs).
    buckets: Box<[u32; WHEEL_SIZE]>,
    /// Slot pool backing the bucket lists.
    slots: Vec<Slot>,
    /// Head of the free-slot list.
    free: u32,
    /// Occupancy bit per bucket.
    bitmap: [u64; BITMAP_WORDS],
    /// Arms at or beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<(Cycle, u32)>>,
    enabled: bool,
    pending: usize,
    armed: u64,
    armed_by_kind: [u64; EventKind::ALL.len()],
}

impl Scheduler {
    /// Creates an empty scheduler. When `enabled` is false every arm is a
    /// no-op.
    pub fn new(enabled: bool) -> Self {
        Scheduler {
            buckets: Box::new([NIL; WHEEL_SIZE]),
            slots: Vec::new(),
            free: NIL,
            bitmap: [0; BITMAP_WORDS],
            overflow: BinaryHeap::new(),
            enabled,
            pending: 0,
            armed: 0,
            armed_by_kind: [0; EventKind::ALL.len()],
        }
    }

    /// Whether this scheduler records events.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Arms `(at, target)`. `at` must be strictly in the future relative
    /// to the cycle the caller is executing — `Machine` visits every armed
    /// cycle, which keeps each bucket single-cycled.
    fn push(&mut self, now_hint: Cycle, at: Cycle, target: u32, kind: EventKind) {
        if !self.enabled {
            return;
        }
        debug_assert!(at > now_hint, "arm must be in the future");
        if at - now_hint >= WHEEL_SIZE as u64 {
            self.overflow.push(Reverse((at, target)));
        } else {
            let idx = (at & WHEEL_MASK) as usize;
            let slot = Slot {
                at,
                target,
                next: self.buckets[idx],
            };
            let slot_idx = if self.free != NIL {
                let i = self.free;
                self.free = self.slots[i as usize].next;
                self.slots[i as usize] = slot;
                i
            } else {
                let i = self.slots.len() as u32;
                self.slots.push(slot);
                i
            };
            self.buckets[idx] = slot_idx;
            self.bitmap[idx / 64] |= 1 << (idx % 64);
        }
        self.pending += 1;
        self.armed += 1;
        self.armed_by_kind[kind.index()] += 1;
    }

    /// Arms a wakeup for `core` at `at` (call from the tick executing at
    /// `now`; `at` must be `> now`).
    ///
    /// # Panics
    ///
    /// Panics if `core` collides with the sentinel target encodings
    /// (≥ `u32::MAX - 1` cores — far beyond any simulated machine).
    pub fn wake_core(&mut self, now: Cycle, at: Cycle, core: usize, kind: EventKind) {
        let id = u32::try_from(core).expect("core id fits the queue encoding");
        assert!(id < TARGET_BLOCKED, "core id collides with queue sentinels");
        self.push(now, at, id, kind);
    }

    /// Arms a machine-level wakeup (network delivery) at `at`.
    pub fn wake_machine(&mut self, now: Cycle, at: Cycle, kind: EventKind) {
        self.push(now, at, TARGET_MACHINE, kind);
    }

    /// Arms a wakeup of every lock-blocked core at `at`.
    pub fn wake_blocked(&mut self, now: Cycle, at: Cycle) {
        self.push(now, at, TARGET_BLOCKED, EventKind::LockRelease);
    }

    /// Pops every event armed at exactly `now`, appending due core ids to
    /// `due_cores` in ascending order without duplicates. Returns the
    /// machine-level flags.
    pub fn drain_due(&mut self, now: Cycle, due_cores: &mut Vec<usize>) -> Due {
        let mut due = Due::default();
        let idx = (now & WHEEL_MASK) as usize;
        if self.bitmap[idx / 64] & (1 << (idx % 64)) != 0 {
            self.bitmap[idx / 64] &= !(1 << (idx % 64));
            let mut head = self.buckets[idx];
            self.buckets[idx] = NIL;
            while head != NIL {
                let Slot { at, target, next } = self.slots[head as usize];
                debug_assert_eq!(at, now, "bucket holds a single cycle");
                self.slots[head as usize].next = self.free;
                self.free = head;
                head = next;
                self.pending -= 1;
                match target {
                    TARGET_MACHINE => due.machine = true,
                    TARGET_BLOCKED => due.wake_blocked = true,
                    id => due_cores.push(id as usize),
                }
            }
        }
        while let Some(&Reverse((at, target))) = self.overflow.peek() {
            if at > now {
                break;
            }
            self.overflow.pop();
            self.pending -= 1;
            if at < now {
                continue; // stale (already serviced at its cycle)
            }
            match target {
                TARGET_MACHINE => due.machine = true,
                TARGET_BLOCKED => due.wake_blocked = true,
                id => due_cores.push(id as usize),
            }
        }
        due_cores.sort_unstable();
        due_cores.dedup();
        due
    }

    /// The earliest armed cycle strictly after `now`. Returns `None` when
    /// nothing is armed — for the machine that means no tick can ever
    /// change state again (completion or wedge).
    pub fn next_after(&mut self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        // Circular bitmap scan over the wheel, starting at now + 1. All
        // wheel entries lie in (now, now + WHEEL_SIZE), so the first
        // occupied bucket in circular order is the earliest wheel cycle.
        let start = ((now + 1) & WHEEL_MASK) as usize;
        'scan: for step in 0..BITMAP_WORDS + 1 {
            let word_idx = (start / 64 + step) % BITMAP_WORDS;
            let mut word = self.bitmap[word_idx];
            if step == 0 {
                word &= !0u64 << (start % 64);
            }
            if step == BITMAP_WORDS {
                word &= !(!0u64 << (start % 64));
            }
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                let idx = word_idx * 64 + bit;
                let at = self.slots[self.buckets[idx] as usize].at;
                debug_assert!(at > now);
                best = Some(at);
                break 'scan;
            }
        }
        while let Some(&Reverse((at, _))) = self.overflow.peek() {
            if at > now {
                best = Some(best.map_or(at, |b| b.min(at)));
                break;
            }
            self.overflow.pop();
            self.pending -= 1;
        }
        best
    }

    /// Events currently armed and not yet drained.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total events armed so far.
    pub fn armed(&self) -> u64 {
        self.armed
    }

    /// Events armed so far for one kind.
    pub fn armed_by_kind(&self, kind: EventKind) -> u64 {
        self.armed_by_kind[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scheduler_ignores_arms() {
        let mut s = Scheduler::new(false);
        s.wake_core(0, 5, 0, EventKind::CoreReady);
        s.wake_machine(0, 6, EventKind::NetDelivery);
        s.wake_blocked(0, 7);
        assert!(!s.enabled());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.armed(), 0);
        assert_eq!(s.next_after(0), None);
    }

    #[test]
    fn drains_due_cores_in_id_order_without_duplicates() {
        let mut s = Scheduler::new(true);
        s.wake_core(0, 10, 3, EventKind::WbCompletion);
        s.wake_core(0, 10, 1, EventKind::CoreReady);
        s.wake_core(0, 10, 3, EventKind::Advance);
        s.wake_core(0, 20, 0, EventKind::CoreReady);
        s.wake_machine(0, 10, EventKind::NetDelivery);
        assert_eq!(s.next_after(0), Some(10));
        let mut due = Vec::new();
        let flags = s.drain_due(10, &mut due);
        assert_eq!(due, vec![1, 3]);
        assert!(flags.machine);
        assert!(!flags.wake_blocked);
        assert_eq!(s.next_after(10), Some(20));
        assert_eq!(s.armed(), 5);
        assert_eq!(s.armed_by_kind(EventKind::CoreReady), 2);
        due.clear();
        let flags = s.drain_due(20, &mut due);
        assert_eq!(due, vec![0]);
        assert!(!flags.machine);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next_after(20), None);
    }

    #[test]
    fn far_future_arms_spill_to_the_overflow() {
        let mut s = Scheduler::new(true);
        let far = 3 + 10 * WHEEL_SIZE as u64;
        s.wake_core(3, far, 2, EventKind::CoreReady);
        s.wake_blocked(3, 4);
        assert_eq!(s.next_after(3), Some(4));
        let mut due = Vec::new();
        let flags = s.drain_due(4, &mut due);
        assert!(flags.wake_blocked);
        assert!(due.is_empty());
        assert_eq!(s.next_after(4), Some(far));
        due.clear();
        let _ = s.drain_due(far, &mut due);
        assert_eq!(due, vec![2]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn wheel_wraps_cleanly_across_many_horizons() {
        let mut s = Scheduler::new(true);
        let mut now = 0u64;
        for round in 0..2_000u64 {
            let at = now + 1 + (round % 400);
            s.wake_core(now, at, (round % 5) as usize, EventKind::Advance);
            let next = s.next_after(now).expect("armed");
            assert_eq!(next, at);
            let mut due = Vec::new();
            s.drain_due(next, &mut due);
            assert_eq!(due, vec![(round % 5) as usize]);
            now = next;
        }
        assert_eq!(s.pending(), 0);
    }
}
