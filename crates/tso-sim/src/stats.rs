//! Simulation statistics — the quantities behind Table 3 and Figure 11.

use interconnect::Cycle;

/// The paper's Fig. 11(a) decomposition of RMW cost: cycles the core spent
/// stalled on the write-buffer drain vs. on performing `Ra`/`Wa` (permission
/// acquisition, locking, and any broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RmwCostBreakdown {
    /// Critical-path cycles attributable to write-buffer handling (the
    /// drain for type-1; bloom-triggered reverted drains for type-2/3).
    pub write_buffer_cycles: Cycle,
    /// Critical-path cycles attributable to `Ra`/`Wa`: coherence
    /// acquisition, line locking, and RMW-address broadcasts.
    pub ra_wa_cycles: Cycle,
}

/// Interconnect traffic observed during one run — currently the §3.2
/// RMW-address broadcast scheme (broadcasts + acks), the overhead the
/// paper reports as negligible (<0.5 %). Coherence transactions remain
/// latency-composed (see the `coherence` crate docs), so they do not
/// appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetTraffic {
    /// Total messages sent on the mesh.
    pub messages: u64,
    /// Total link traversals (the paper's traffic metric).
    pub hops: u64,
    /// Messages in the RMW-broadcast class (broadcast copies and acks).
    pub broadcast_messages: u64,
    /// Link traversals in the RMW-broadcast class.
    pub broadcast_hops: u64,
}

/// Diagnostics of the time-advance engine itself (not simulated
/// behavior): how much work the run cost the host. Lockstep visits every
/// cycle and ticks every core; the event engine visits only armed cycles
/// and ticks only due cores. These fields legitimately differ between the
/// two engines — the equivalence contract covers everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Cycles the engine executed (== `cycles` for lockstep).
    pub visited_cycles: u64,
    /// Core ticks executed.
    pub ticks: u64,
    /// Core ticks that acted (changed state or statistics).
    pub acting_ticks: u64,
    /// Events armed in the scheduler (0 for lockstep).
    pub events_armed: u64,
    /// Hybrid engine only: dense↔sparse mode switches performed.
    pub mode_switches: u64,
    /// Hybrid engine only: visited cycles executed in dense
    /// (lockstep-style) stepping.
    pub dense_cycles: u64,
    /// Hybrid engine only: visited cycles executed in sparse
    /// (event-jump) stepping.
    pub sparse_cycles: u64,
}

impl RmwCostBreakdown {
    /// Total critical-path cycles.
    pub fn total(&self) -> Cycle {
        self.write_buffer_cycles + self.ra_wa_cycles
    }

    /// Average cost per RMW given a count.
    pub fn average(&self, rmw_count: u64) -> f64 {
        if rmw_count == 0 {
            0.0
        } else {
            self.total() as f64 / rmw_count as f64
        }
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Retired operations (all kinds).
    pub ops: u64,
    /// Retired memory operations (reads + writes + RMWs).
    pub mem_ops: u64,
    /// Retired RMWs.
    pub rmw_count: u64,
    /// Distinct RMW cache-line addresses seen machine-wide.
    pub unique_rmw_addrs: u64,
    /// RMW cost decomposition (Fig. 11a).
    pub rmw_cost: RmwCostBreakdown,
    /// Write-buffer drains performed on behalf of RMWs. For type-1 this is
    /// every RMW; for type-2/3 only Bloom-filter hits (Table 3's
    /// "% write-buffer drains").
    pub rmw_drains: u64,
    /// RMW address broadcasts sent (Table 3's "RMW broadcasts per 100").
    pub rmw_broadcasts: u64,
    /// Bloom filter resets triggered by the threshold counter.
    pub bloom_resets: u64,
    /// Lock-contention pressure, in cycles: each write-buffer request
    /// denied at the directory counts once (the retry cadence is one
    /// round trip), and each cycle a read or an RMW acquisition sat
    /// blocked on a foreign line lock counts once (attributed in bulk
    /// when the episode ends).
    pub lock_retries: u64,
    /// Cycles an operation stalled because the write buffer was full: a
    /// store waiting for a free slot, or a type-2/3 RMW whose `Wa` could
    /// not retire into the buffer. Attributed when the stall ends.
    pub wb_full_stalls: u64,
    /// Fence stalls (cycles waiting on `mfence` drains) — including the
    /// pre-futex write-buffer drains (kernel-entry serialization).
    pub fence_cycles: Cycle,
    /// `FutexWait` calls that found `memory[addr] == expected` and slept.
    pub futex_waits: u64,
    /// `FutexWait` calls whose expected-value check failed (EAGAIN — the
    /// caller returned immediately and was never enqueued).
    pub futex_immediate: u64,
    /// Waiters dequeued by this core's `FutexWake` calls.
    pub futex_wakes: u64,
    /// Times this core was woken from a futex sleep. Machine-wide this
    /// matches `futex_wakes` unless the run ended with wakeups in flight.
    pub futex_wakeups: u64,
    /// Cycles spent asleep on a futex queue (blocked, burning no events).
    pub blocked_cycles: Cycle,
    /// Taken backward branches/jumps — each one is a spin-loop retry.
    pub spin_retries: u64,
    /// Cycles inside spin episodes: from the first taken back-edge until
    /// the loop exits (a fall-through or taken forward branch) or the
    /// core sleeps. The spin/blocked split is the paper-facing contrast
    /// between spinning and futex-based kernels.
    pub spin_cycles: Cycle,
    /// Cycles between waking from a futex sleep and completing the next
    /// RMW (the first lock-word access after resume) — the wake-to-acquire
    /// handoff latency.
    pub wake_to_acquire_cycles: Cycle,
    /// Completed wake→RMW handoffs (the count behind
    /// `wake_to_acquire_cycles`).
    pub handoffs: u64,
}

impl SimStats {
    /// Average critical-path cost of one RMW in cycles (Fig. 11a's bar
    /// height).
    pub fn avg_rmw_cost(&self) -> f64 {
        self.rmw_cost.average(self.rmw_count)
    }

    /// Fraction of execution time spent on RMW critical-path stalls
    /// (Fig. 11b's bar height).
    pub fn rmw_overhead_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rmw_cost.total() as f64 / self.cycles as f64
        }
    }

    /// RMWs per 1000 memory operations (Table 3's "Ratio of RMWs").
    pub fn rmw_density_per_1000(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            1000.0 * self.rmw_count as f64 / self.mem_ops as f64
        }
    }

    /// Percentage of RMWs that are to previously-unseen addresses
    /// (Table 3's "% Unique RMWs").
    pub fn pct_unique_rmws(&self) -> f64 {
        if self.rmw_count == 0 {
            0.0
        } else {
            100.0 * self.unique_rmw_addrs as f64 / self.rmw_count as f64
        }
    }

    /// Percentage of RMWs that required a write-buffer drain (Table 3's
    /// "% write-buffer drains for type-2/type-3").
    pub fn pct_drains(&self) -> f64 {
        if self.rmw_count == 0 {
            0.0
        } else {
            100.0 * self.rmw_drains as f64 / self.rmw_count as f64
        }
    }

    /// Broadcasts per 100 RMW operations (Table 3's last column).
    pub fn broadcasts_per_100(&self) -> f64 {
        if self.rmw_count == 0 {
            0.0
        } else {
            100.0 * self.rmw_broadcasts as f64 / self.rmw_count as f64
        }
    }

    /// Accumulates another core's stats into this machine-level aggregate
    /// (cycle counts take the max; event counts add).
    pub fn merge_core(&mut self, other: &SimStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.ops += other.ops;
        self.mem_ops += other.mem_ops;
        self.rmw_count += other.rmw_count;
        self.rmw_cost.write_buffer_cycles += other.rmw_cost.write_buffer_cycles;
        self.rmw_cost.ra_wa_cycles += other.rmw_cost.ra_wa_cycles;
        self.rmw_drains += other.rmw_drains;
        self.rmw_broadcasts += other.rmw_broadcasts;
        self.bloom_resets += other.bloom_resets;
        self.lock_retries += other.lock_retries;
        self.wb_full_stalls += other.wb_full_stalls;
        self.fence_cycles += other.fence_cycles;
        self.futex_waits += other.futex_waits;
        self.futex_immediate += other.futex_immediate;
        self.futex_wakes += other.futex_wakes;
        self.futex_wakeups += other.futex_wakeups;
        self.blocked_cycles += other.blocked_cycles;
        self.spin_retries += other.spin_retries;
        self.spin_cycles += other.spin_cycles;
        self.wake_to_acquire_cycles += other.wake_to_acquire_cycles;
        self.handoffs += other.handoffs;
        // unique_rmw_addrs is machine-global; set by the machine, not merged.
    }

    /// Average wake→RMW handoff latency in cycles (0 with no handoffs).
    pub fn avg_wake_to_acquire(&self) -> f64 {
        if self.handoffs == 0 {
            0.0
        } else {
            self.wake_to_acquire_cycles as f64 / self.handoffs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = RmwCostBreakdown {
            write_buffer_cycles: 40,
            ra_wa_cycles: 29,
        };
        assert_eq!(b.total(), 69);
        assert!((b.average(1) - 69.0).abs() < 1e-9);
        assert!((b.average(2) - 34.5).abs() < 1e-9);
        assert_eq!(b.average(0), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            ops: 500,
            mem_ops: 400,
            rmw_count: 8,
            unique_rmw_addrs: 2,
            rmw_cost: RmwCostBreakdown {
                write_buffer_cycles: 60,
                ra_wa_cycles: 40,
            },
            rmw_drains: 1,
            rmw_broadcasts: 2,
            ..Default::default()
        };
        assert!((s.avg_rmw_cost() - 12.5).abs() < 1e-9);
        assert!((s.rmw_overhead_fraction() - 0.1).abs() < 1e-9);
        assert!((s.rmw_density_per_1000() - 20.0).abs() < 1e-9);
        assert!((s.pct_unique_rmws() - 25.0).abs() < 1e-9);
        assert!((s.pct_drains() - 12.5).abs() < 1e-9);
        assert!((s.broadcasts_per_100() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.avg_rmw_cost(), 0.0);
        assert_eq!(s.rmw_overhead_fraction(), 0.0);
        assert_eq!(s.rmw_density_per_1000(), 0.0);
        assert_eq!(s.pct_unique_rmws(), 0.0);
        assert_eq!(s.pct_drains(), 0.0);
        assert_eq!(s.broadcasts_per_100(), 0.0);
    }

    #[test]
    fn merge_semantics() {
        let mut a = SimStats {
            cycles: 100,
            ops: 10,
            rmw_count: 1,
            ..Default::default()
        };
        let b = SimStats {
            cycles: 200,
            ops: 20,
            rmw_count: 2,
            ..Default::default()
        };
        a.merge_core(&b);
        assert_eq!(a.cycles, 200, "cycles take the max");
        assert_eq!(a.ops, 30);
        assert_eq!(a.rmw_count, 3);
    }

    #[test]
    fn contention_fields_merge_and_average() {
        let mut a = SimStats {
            futex_waits: 1,
            futex_wakes: 2,
            blocked_cycles: 50,
            spin_retries: 3,
            handoffs: 1,
            wake_to_acquire_cycles: 30,
            ..Default::default()
        };
        let b = SimStats {
            futex_waits: 4,
            futex_immediate: 1,
            futex_wakeups: 2,
            blocked_cycles: 10,
            spin_cycles: 7,
            handoffs: 1,
            wake_to_acquire_cycles: 10,
            ..Default::default()
        };
        a.merge_core(&b);
        assert_eq!(a.futex_waits, 5);
        assert_eq!(a.futex_immediate, 1);
        assert_eq!(a.futex_wakes, 2);
        assert_eq!(a.futex_wakeups, 2);
        assert_eq!(a.blocked_cycles, 60);
        assert_eq!(a.spin_retries, 3);
        assert_eq!(a.spin_cycles, 7);
        assert_eq!(a.handoffs, 2);
        assert!((a.avg_wake_to_acquire() - 20.0).abs() < 1e-9);
        assert_eq!(SimStats::default().avg_wake_to_acquire(), 0.0);
    }
}
