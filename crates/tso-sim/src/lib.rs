//! Cycle-approximate CMP timing simulator implementing the paper's three
//! RMW microarchitectures (§3.1–3.3).
//!
//! The machine models the paper's Table 2 system: in-order cores with
//! 32-entry write buffers, private L1s, a shared distributed L2 with MOESI
//! directory coherence (crate `coherence`), and a 2D-mesh NoC (crate
//! `interconnect`). Cores execute [`Op`] traces produced by the `workloads`
//! crate.
//!
//! The RMW implementations:
//!
//! * **type-1** (§3.1, today's hardware): drain the write buffer (parallel
//!   read-exclusive issue à la Gharachorloo), acquire exclusive ownership,
//!   lock the line locally, perform read+write, unlock. Instructions after
//!   the RMW wait for all of it.
//! * **type-2** (§3.2): consult the per-core **Bloom filter** of RMW
//!   addresses (broadcasting the address first if new); if any pending
//!   write conflicts, *revert to a type-1 drain*; otherwise acquire
//!   ownership, lock, retire the read, and drop the write into the write
//!   buffer — the drain leaves the critical path.
//! * **type-3** (§3.3): like type-2, but the read needs only *read*
//!   permission; a line held in shared state is locked **at the directory**
//!   so other cores may keep reading (type-3 atomicity permits reads
//!   between `Ra` and `Wa`), and the invalidation delay moves off the
//!   critical path to the write's retirement from the buffer.
//!
//! Timing fidelity is *transaction-level*: coherence transactions resolve
//! to latencies at issue (see `coherence` crate docs); global visibility of
//! a write coincides with its successful coherence transition, while its
//! write-buffer slot frees only when the transaction's latency elapses.
//! This keeps the simulator a valid TSO machine (reads forward from the
//! local buffer; buffered writes commit in order) — the integration tests
//! cross-validate simulator outcomes against the axiomatic model.
//!
//! Time advances via one of three engines ([`StepMode`]): the lockstep
//! reference (tick every core every cycle), the default **event-driven,
//! cycle-skipping scheduler** ([`sched`]), which jumps straight to the
//! next armed wake event, or the adaptive **hybrid** engine, which
//! watches armed-event density and switches between dense
//! (lockstep-style) stepping and sparse event jumps with a cycle-exact
//! handoff. All three are cycle-identical by construction (enforced by
//! `tests/engine_equiv.rs`).
//!
//! # Example
//!
//! ```
//! use tso_sim::{Machine, SimConfig, Op, Trace};
//! use rmw_types::{Addr, Atomicity};
//!
//! let mut cfg = SimConfig::small(2);
//! cfg.rmw_atomicity = Atomicity::Type2;
//! let traces = vec![
//!     Trace::new(vec![Op::write(Addr(0), 1), Op::rmw(Addr(64)), Op::read(Addr(128))]),
//!     Trace::new(vec![Op::rmw(Addr(64))]),
//! ];
//! let result = Machine::new(cfg, traces).run();
//! assert!(!result.deadlocked);
//! assert_eq!(result.stats.rmw_count, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod lower;
pub mod machine;
pub mod sched;
pub mod stats;
pub mod trace;

pub use config::{SimConfig, StepMode};
pub use lower::{lower, lower_with_line_size, sim_addr};
pub use machine::{Machine, SimResult};
pub use sched::{EventKind, Scheduler};
pub use stats::{NetTraffic, RmwCostBreakdown, SimStats};
pub use trace::{Cond, Op, Reg, Src, Trace, NUM_REGS};
