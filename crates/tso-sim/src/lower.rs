//! Lowering axiomatic-model programs onto simulator traces.
//!
//! The model works on dense small addresses (`x` = `Addr(0)`, `y` =
//! `Addr(1)`, ...); the simulator works at cache-line granularity. The
//! lowering gives every model address its own cache line so that litmus
//! programs exercise distinct coherence state per location, exactly like
//! the hand-written machine tests.
//!
//! This module is the single source of truth for the model→sim mapping:
//! the cross-validation integration tests, the property-based differential
//! suite, and the `harness` crate's batch runner all lower through it (it
//! used to live copy-pasted inside `tests/cross_validation.rs`, which made
//! every new differential test file re-derive the address convention).

use crate::trace::{Op, Trace};
use rmw_types::Addr;
use tso_model::{Instr, Program};

/// Maps a model address to the simulator address of its cache line, for a
/// given line size in bytes.
pub fn sim_addr(model: Addr, line_size: u64) -> Addr {
    Addr(model.0 * line_size)
}

/// Lowers a model [`Program`] to one simulator [`Trace`] per thread, placing
/// each model address on its own `line_size`-byte cache line.
///
/// RMW kinds pass through unchanged; the RMW's *atomicity* is deliberately
/// dropped — the simulator implements atomicity as a machine-wide
/// configuration (`SimConfig::rmw_atomicity`), so callers align the model
/// side with [`Program::with_atomicity`] before lowering.
pub fn lower_with_line_size(program: &Program, line_size: u64) -> Vec<Trace> {
    program
        .iter()
        .map(|(_, instrs)| {
            Trace::new(
                instrs
                    .iter()
                    .map(|&i| match i {
                        Instr::Read(a) => Op::Read(sim_addr(a, line_size)),
                        Instr::Write(a, v) => Op::Write(sim_addr(a, line_size), v),
                        Instr::Rmw { addr, kind, .. } => Op::Rmw(sim_addr(addr, line_size), kind),
                        Instr::Fence => Op::Fence,
                    })
                    .collect(),
            )
        })
        .collect()
}

/// [`lower_with_line_size`] at the default 64-byte line size used by
/// [`SimConfig::small`](crate::SimConfig::small) and the paper's Table 2
/// machine.
pub fn lower(program: &Program) -> Vec<Trace> {
    lower_with_line_size(program, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmw_types::{Atomicity, RmwKind};
    use tso_model::ProgramBuilder;

    #[test]
    fn lowering_spreads_addresses_across_lines() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(Addr(0), 1)
            .rmw(Addr(1), RmwKind::TestAndSet, Atomicity::Type2)
            .fence()
            .read(Addr(2));
        let traces = lower(&b.build());
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].ops(),
            &[
                Op::Write(Addr(0), 1),
                Op::Rmw(Addr(64), RmwKind::TestAndSet),
                Op::Fence,
                Op::Read(Addr(128)),
            ]
        );
    }

    #[test]
    fn one_trace_per_thread_in_order() {
        let mut b = ProgramBuilder::new();
        b.thread().read(Addr(0));
        b.thread().write(Addr(1), 7);
        let traces = lower_with_line_size(&b.build(), 128);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].ops(), &[Op::Read(Addr(0))]);
        assert_eq!(traces[1].ops(), &[Op::Write(Addr(128), 7)]);
    }

    #[test]
    fn sim_addr_is_line_aligned() {
        assert_eq!(sim_addr(Addr(3), 64), Addr(192));
        assert_eq!(sim_addr(Addr(0), 64), Addr(0));
    }
}
