//! Simulator configuration (paper Table 2 plus the §3.2/§3.3 mechanism
//! knobs).

use coherence::CoherenceConfig;
use interconnect::MeshConfig;
use rmw_types::Atomicity;

/// How [`Machine::run`](crate::Machine::run) advances simulated time. Both
/// engines execute the same per-cycle core semantics and are
/// **cycle-identical** in every observable (stats, reads, final memory —
/// asserted over the litmus corpus and the §4 kernels by
/// `tests/engine_equiv.rs`); they differ only in which cycles they visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Tick every core every cycle — the original engine, kept as the
    /// reference implementation for the equivalence suite.
    Lockstep,
    /// Cycle-skipping scheduler (see [`crate::sched`]): jump `now` to the
    /// earliest armed wake event. Orders of magnitude faster on
    /// stall-dominated (paper-scale) workloads.
    #[default]
    EventDriven,
    /// Adaptive engine: tracks armed-event density over a sliding window
    /// of visited cycles and switches between dense stepping (tick every
    /// live core, no next-event scans — the lockstep shape) and sparse
    /// event-driven jumps. State hands off cycle-exactly at every switch:
    /// `now`, the watchdog (`last_progress`), and the pending
    /// wheel/overflow contents all survive a transition untouched, so the
    /// result is cycle-identical to both other engines whatever the
    /// switch schedule.
    Hybrid,
}

/// Full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Cache/directory/mesh parameters.
    pub coherence: CoherenceConfig,
    /// Time-advance engine (default: event-driven; `Lockstep` is the
    /// reference implementation).
    pub step_mode: StepMode,
    /// Write-buffer depth per core (paper: 32 entries).
    pub write_buffer_entries: usize,
    /// Maximum outstanding write-buffer coherence requests (MSHR-style
    /// pipelining). Acceptance — and hence visibility — stays FIFO; only
    /// the request round-trips overlap. During a parallel drain the whole
    /// buffer is in flight regardless of this limit.
    pub wb_outstanding: usize,
    /// Which RMW implementation the machine uses.
    pub rmw_atomicity: Atomicity,
    /// Bloom filter size in bytes (paper: 128).
    pub bloom_bytes: usize,
    /// Bloom hash count (paper: 3).
    pub bloom_hashes: u32,
    /// Disable the deadlock-avoidance filter entirely (type-2/3 become
    /// unsafe; used to demonstrate the Fig. 10 write-deadlock).
    pub bloom_enabled: bool,
    /// Reset all filters once this many addresses were inserted
    /// (`None` = never; the paper's runs never needed a reset).
    pub bloom_reset_threshold: Option<u64>,
    /// Use the §3.3 directory-locking protocol for type-3 RMWs on shared
    /// lines (ablation: `false` falls back to acquiring exclusive
    /// ownership, i.e. the type-2 path).
    pub directory_locking: bool,
    /// Issue read-exclusives for all drained writes in parallel
    /// (Gharachorloo; the paper's baseline does this).
    pub parallel_drain: bool,
    /// Insert a full fence after every RMW (the §1 hypothesis experiment).
    pub fence_after_rmw: bool,
    /// Declare deadlock after this many cycles without any core making
    /// progress.
    pub deadlock_threshold: u64,
    /// Hard cycle ceiling: the machine halts (with
    /// [`SimResult::truncated`](crate::SimResult::truncated) set) at this
    /// cycle even if cores are still making progress. Spin livelock counts
    /// as progress, so the watchdog alone cannot bound a buggy spin
    /// kernel; this can. Both engines stop at exactly the same cycle.
    pub max_cycles: u64,
    /// Kernel-trap latency of a futex call (`wait`/`wake`), in cycles.
    /// Must be ≥ 1: a woken core resumes strictly after the waking cycle.
    pub futex_latency: u64,
    /// Cache line size in bytes.
    pub line_size: u64,
}

impl SimConfig {
    /// The paper's evaluated configuration (Table 2): 32 in-order cores,
    /// 32-entry write buffers, MOESI directory, 8×4 mesh, 128-byte 3-hash
    /// Bloom filter, parallel drain, type-1 RMWs (the baseline).
    pub fn paper_table2() -> Self {
        SimConfig {
            coherence: CoherenceConfig::paper_table2(),
            step_mode: StepMode::EventDriven,
            write_buffer_entries: 32,
            wb_outstanding: 8,
            rmw_atomicity: Atomicity::Type1,
            bloom_bytes: 128,
            bloom_hashes: 3,
            bloom_enabled: true,
            bloom_reset_threshold: None,
            directory_locking: true,
            parallel_drain: true,
            fence_after_rmw: false,
            deadlock_threshold: 2_000_000,
            max_cycles: u64::MAX,
            // Half a memory round trip: a trap is cheaper than a cold
            // miss but far from free on the Table 2 machine.
            futex_latency: 150,
            line_size: 64,
        }
    }

    /// The Table 2 machine scaled to `cores` cores: every latency stays
    /// at paper values and only the mesh is resized — `paper_scaled(32)`
    /// keeps the paper's exact 8×4 grid, any other count gets the
    /// smallest near-square mesh with at least `cores` nodes (nodes past
    /// the core count are routers only). This is both the scale-*down*
    /// used by small experiment runs and the scale-*up* behind the
    /// 128/256-core machines (`litmus_run --machine 128|256`) the paper
    /// never evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn paper_scaled(cores: usize) -> Self {
        assert!(cores >= 1, "need at least 1 core, got {cores}");
        let mut c = SimConfig::paper_table2();
        if cores != 32 {
            c.coherence.num_cores = cores;
            let width = (cores as f64).sqrt().ceil() as usize;
            c.coherence.mesh.width = width;
            c.coherence.mesh.height = cores.div_ceil(width);
        }
        c
    }

    /// A small configuration for unit tests.
    pub fn small(num_cores: usize) -> Self {
        SimConfig {
            coherence: CoherenceConfig::small(num_cores),
            step_mode: StepMode::EventDriven,
            write_buffer_entries: 8,
            wb_outstanding: 4,
            rmw_atomicity: Atomicity::Type1,
            bloom_bytes: 64,
            bloom_hashes: 3,
            bloom_enabled: true,
            bloom_reset_threshold: None,
            directory_locking: true,
            parallel_drain: true,
            fence_after_rmw: false,
            deadlock_threshold: 100_000,
            max_cycles: u64::MAX,
            futex_latency: 30,
            line_size: 64,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.coherence.num_cores
    }

    /// The mesh configuration.
    pub fn mesh(&self) -> MeshConfig {
        self.coherence.mesh
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.write_buffer_entries == 0 {
            return Err("write buffer must have at least one entry".into());
        }
        if self.bloom_bytes == 0 || self.bloom_hashes == 0 {
            return Err("bloom filter configuration must be nonzero".into());
        }
        if !self.line_size.is_power_of_two() {
            return Err(format!("line size {} not a power of two", self.line_size));
        }
        if self.coherence.num_cores > self.coherence.mesh.num_nodes() {
            return Err("more cores than mesh nodes".into());
        }
        if self.futex_latency == 0 {
            return Err("futex latency must be at least one cycle".into());
        }
        if self.max_cycles == 0 {
            return Err("max_cycles must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = SimConfig::paper_table2();
        assert_eq!(c.num_cores(), 32);
        assert_eq!(c.write_buffer_entries, 32);
        assert_eq!(c.coherence.l1_latency, 2);
        assert_eq!(c.coherence.l2_latency, 6);
        assert_eq!(c.coherence.memory_latency, 300);
        assert_eq!(c.bloom_bytes, 128);
        assert_eq!(c.bloom_hashes, 3);
        assert!(c.parallel_drain);
        assert!(c.validate().is_ok());
        assert_eq!(c, SimConfig::default());
    }

    #[test]
    fn paper_scaled_keeps_latencies_at_every_size() {
        assert_eq!(SimConfig::paper_scaled(32), SimConfig::paper_table2());
        for cores in [1, 8, 128, 256] {
            let c = SimConfig::paper_scaled(cores);
            assert_eq!(c.num_cores(), cores);
            assert_eq!(c.coherence.l1_latency, 2);
            assert_eq!(c.coherence.l2_latency, 6);
            assert_eq!(c.coherence.memory_latency, 300);
            assert!(c.mesh().num_nodes() >= cores);
            assert!(c.validate().is_ok());
        }
        // The big machines stay near-square: 128 → 12×11, 256 → 16×16.
        assert_eq!(SimConfig::paper_scaled(128).mesh().num_nodes(), 132);
        assert_eq!(SimConfig::paper_scaled(256).mesh().num_nodes(), 256);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = SimConfig::small(2);
        c.write_buffer_entries = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small(2);
        c.bloom_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small(2);
        c.line_size = 48;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small(2);
        c.futex_latency = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small(2);
        c.max_cycles = 0;
        assert!(c.validate().is_err());
    }
}
