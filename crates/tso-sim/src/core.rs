//! The in-order core model: write buffer, RMW phase machine, and the
//! per-op execution rules.
//!
//! # Timing/visibility discipline
//!
//! A write becomes **globally visible** when its coherence transaction
//! succeeds (the `coherence` crate applies state transitions at issue);
//! its write-buffer slot frees when the transaction's latency has elapsed.
//! Reads resolve their value at issue, after store-forwarding from the
//! local write buffer. Together with FIFO buffer commit this makes each
//! execution of the machine a legal TSO interleaving (cross-validated
//! against the axiomatic model in the integration tests).
//!
//! # RMW phase machine
//!
//! ```text
//!   type-1:             Drain ──► Acquire ──► Finish(commit Wa, unlock)
//!   type-2/3 (bloom):   Bloom ──► WaitAcks ──► CheckConflicts ─┬─► Acquire ──► Finish(Wa→WB)
//!                                                 (hit) ───────┴─► Drain ──► Acquire ...
//! ```
//!
//! Critical-path attribution (Fig. 11a): cycles spent in `Drain` count as
//! *write-buffer* cost; everything else (bloom check, broadcast ack wait,
//! permission acquisition, locking) counts as *Ra/Wa* cost.

use crate::config::SimConfig;
use crate::stats::SimStats;
use crate::trace::{Op, Trace};
use bloom::BloomFilter;
use coherence::{CoherenceSystem, LockKind};
use interconnect::Cycle;
use rmw_types::{Addr, Atomicity, CacheLine, RmwKind, Value};
use std::collections::{HashMap, HashSet, VecDeque};

/// A pending write in the write buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WbEntry {
    pub addr: Addr,
    pub value: Value,
    pub line: CacheLine,
    /// Arrival time of the in-flight coherence request at the home
    /// directory, if one has been sent. Lock denial happens at arrival —
    /// this in-flight window is what makes write-deadlocks possible.
    pub request_arrives: Option<Cycle>,
    /// Completion cycle of the accepted coherence transaction, if accepted.
    pub issued_done: Option<Cycle>,
    /// True for an RMW's `Wa`: popping it releases the line lock.
    pub unlock_on_pop: bool,
}

/// Phase of an in-flight RMW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RmwPhase {
    /// Query/insert the local Bloom filter; broadcast if the address is new.
    Bloom,
    /// Waiting for broadcast acknowledgements.
    WaitAcks { until: Cycle },
    /// Check pending writes against the filter.
    CheckConflicts,
    /// Waiting for the write buffer to empty (type-1, or reverted type-2/3).
    Drain,
    /// Retrying the coherence acquisition + line lock.
    Acquire,
    /// Read half completes at `at`; then commit or enqueue the write half.
    Finish { at: Cycle },
}

/// The in-flight RMW's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct RmwInFlight {
    addr: Addr,
    line: CacheLine,
    kind: RmwKind,
    phase: RmwPhase,
    /// Cycle the RMW began (for attribution).
    started: Cycle,
    /// Start of the current drain, if any.
    drain_started: Option<Cycle>,
    /// Start of the acquire phase.
    acquire_started: Option<Cycle>,
    /// Cycles already attributed to Ra/Wa before the acquire phase
    /// (bloom + ack wait).
    pre_acquire_rawa: Cycle,
}

/// Shared machine state each core ticks against.
#[derive(Debug)]
pub(crate) struct Shared {
    pub coherence: CoherenceSystem,
    pub memory: HashMap<Addr, Value>,
    pub unique_rmw_lines: HashSet<CacheLine>,
    /// RMW addresses broadcast this cycle; the machine inserts them into
    /// every core's filter at end of cycle.
    pub pending_broadcasts: Vec<CacheLine>,
    /// Set when the reset threshold fires; machine coordinates the reset.
    pub reset_requested: bool,
    /// Cycle of the last globally visible progress (retire or WB pop).
    pub last_progress: Cycle,
    /// Precomputed broadcast+ack latency per core.
    pub bcast_ack_latency: Vec<Cycle>,
}

/// One in-order core.
#[derive(Debug)]
pub(crate) struct Core {
    pub id: usize,
    trace: Trace,
    pc: usize,
    busy_until: Cycle,
    wb: VecDeque<WbEntry>,
    pub bloom: BloomFilter,
    rmw: Option<RmwInFlight>,
    fence_since: Option<Cycle>,
    /// Values observed by reads and RMW reads, in program order.
    pub reads: Vec<Value>,
    pub stats: SimStats,
}

impl Core {
    pub fn new(id: usize, trace: Trace, config: &SimConfig) -> Self {
        Core {
            id,
            trace,
            pc: 0,
            busy_until: 0,
            wb: VecDeque::new(),
            bloom: BloomFilter::new(config.bloom_bytes, config.bloom_hashes),
            rmw: None,
            fence_since: None,
            reads: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// True when the core has fully finished.
    pub fn done(&self) -> bool {
        self.pc >= self.trace.len()
            && self.wb.is_empty()
            && self.rmw.is_none()
            && self.fence_since.is_none()
    }

    /// True when the core still holds entries or in-flight state.
    pub fn draining_for_rmw(&self) -> bool {
        matches!(
            self.rmw,
            Some(RmwInFlight {
                phase: RmwPhase::Drain,
                ..
            })
        )
    }

    /// One simulation cycle.
    pub fn tick(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) {
        self.process_write_buffer(now, shared, config);

        if self.rmw.is_some() {
            self.advance_rmw(now, shared, config);
            return;
        }

        if let Some(since) = self.fence_since {
            if self.wb.is_empty() {
                self.stats.fence_cycles += now - since;
                self.fence_since = None;
                shared.last_progress = now;
            } else {
                return;
            }
        }

        if self.busy_until > now || self.pc >= self.trace.len() {
            return;
        }

        let op = self.trace.ops()[self.pc];
        match op {
            Op::Compute(n) => {
                self.busy_until = now + Cycle::from(n);
                self.retire(now, shared);
            }
            Op::Fence => {
                self.fence_since = Some(now);
                self.retire(now, shared);
            }
            Op::Write(addr, value) => {
                if self.wb.len() >= config.write_buffer_entries {
                    self.stats.wb_full_stalls += 1;
                    return; // buffer full: retry next cycle
                }
                self.wb.push_back(WbEntry {
                    addr,
                    value,
                    line: addr.line(config.line_size),
                    request_arrives: None,
                    issued_done: None,
                    unlock_on_pop: false,
                });
                self.busy_until = now + 1;
                self.stats.mem_ops += 1;
                self.retire(now, shared);
            }
            Op::Read(addr) => {
                // Store forwarding from the youngest matching buffer entry.
                if let Some(e) = self.wb.iter().rev().find(|e| e.addr == addr) {
                    self.reads.push(e.value);
                    self.busy_until = now + config.coherence.l1_latency;
                    self.stats.mem_ops += 1;
                    self.retire(now, shared);
                    return;
                }
                let line = addr.line(config.line_size);
                match shared.coherence.read(self.id, line, now) {
                    Ok(acc) => {
                        let v = shared.memory.get(&addr).copied().unwrap_or(0);
                        self.reads.push(v);
                        self.busy_until = acc.done_at;
                        self.stats.mem_ops += 1;
                        self.retire(now, shared);
                    }
                    Err(_) => {
                        self.stats.lock_retries += 1;
                    }
                }
            }
            Op::Rmw(addr, kind) => {
                let line = addr.line(config.line_size);
                let phase = match (config.rmw_atomicity, config.bloom_enabled) {
                    (Atomicity::Type1, _) => RmwPhase::Drain,
                    (_, true) => RmwPhase::Bloom,
                    (_, false) => RmwPhase::Acquire,
                };
                self.rmw = Some(RmwInFlight {
                    addr,
                    line,
                    kind,
                    phase,
                    started: now,
                    drain_started: (phase == RmwPhase::Drain).then_some(now),
                    acquire_started: (phase == RmwPhase::Acquire).then_some(now),
                    pre_acquire_rawa: 0,
                });
                self.retire(now, shared);
            }
        }
    }

    fn retire(&mut self, now: Cycle, shared: &mut Shared) {
        self.pc += 1;
        self.stats.ops += 1;
        shared.last_progress = now;
    }

    /// Sends coherence requests for write-buffer entries and pops completed
    /// heads. During a parallel drain every entry's request is in flight at
    /// once; otherwise only the head's.
    ///
    /// A request is *sent* (after `request_latency` it arrives at the home
    /// directory), then *accepted* (the line was not locked: the write
    /// becomes globally visible and the completion clock starts) or
    /// *denied* (locked by another core's RMW: the request is re-sent).
    /// Acceptance is kept in FIFO order so visibility respects TSO.
    fn process_write_buffer(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) {
        let eager = config.parallel_drain && self.draining_for_rmw();
        let issue_count = if eager {
            self.wb.len()
        } else {
            config.wb_outstanding.min(self.wb.len())
        };

        let mut all_prior_accepted = true;
        for i in 0..issue_count {
            let (line, addr, value, accepted, request_arrives) = {
                let e = &self.wb[i];
                (
                    e.line,
                    e.addr,
                    e.value,
                    e.issued_done.is_some(),
                    e.request_arrives,
                )
            };
            if accepted {
                continue;
            }
            match request_arrives {
                None => {
                    let arrival = now + shared.coherence.request_latency(self.id, line);
                    self.wb[i].request_arrives = Some(arrival);
                }
                Some(arr) if now >= arr && all_prior_accepted => {
                    match shared.coherence.write(self.id, line, now) {
                        Ok(acc) => {
                            shared.memory.insert(addr, value);
                            self.wb[i].issued_done = Some(acc.done_at);
                        }
                        Err(_) => {
                            // Denied by a lock: retry from scratch.
                            self.stats.lock_retries += 1;
                            self.wb[i].request_arrives = None;
                        }
                    }
                }
                Some(_) => {} // in flight, or waiting for FIFO order
            }
            all_prior_accepted &= self.wb[i].issued_done.is_some();
        }

        // Pop completed head entries (one per cycle is enough at this
        // timescale, but draining benefits from popping all ready heads).
        while let Some(head) = self.wb.front() {
            match head.issued_done {
                Some(done) if done <= now => {
                    let e = self.wb.pop_front().expect("head exists");
                    // Release the line lock only once the *last* pending Wa
                    // to this line commits: back-to-back RMWs to one line
                    // keep it locked across both, whether the successor's
                    // Wa is already buffered or its RMW is still in flight
                    // holding the lock (Finish phase).
                    let later_wa_same_line =
                        self.wb.iter().any(|w| w.unlock_on_pop && w.line == e.line);
                    let in_flight_same_line = self.rmw.is_some_and(|r| {
                        r.line == e.line && matches!(r.phase, RmwPhase::Finish { .. })
                    });
                    if e.unlock_on_pop && !later_wa_same_line && !in_flight_same_line {
                        shared.coherence.unlock(self.id, e.line);
                    }
                    shared.last_progress = now;
                }
                _ => break,
            }
        }
    }

    fn advance_rmw(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) {
        let mut rmw = self.rmw.expect("advance_rmw called with RMW in flight");
        match rmw.phase {
            RmwPhase::Bloom => {
                let key = rmw.line.0;
                if !self.bloom.maybe_contains(key) {
                    self.bloom.insert(key);
                    shared.pending_broadcasts.push(rmw.line);
                    self.stats.rmw_broadcasts += 1;
                    if let Some(threshold) = config.bloom_reset_threshold {
                        if self.bloom.insertions() >= threshold {
                            shared.reset_requested = true;
                        }
                    }
                    rmw.phase = RmwPhase::WaitAcks {
                        until: now + shared.bcast_ack_latency[self.id],
                    };
                } else {
                    rmw.phase = RmwPhase::CheckConflicts;
                }
                shared.last_progress = now;
            }
            RmwPhase::WaitAcks { until } => {
                if now >= until {
                    rmw.phase = RmwPhase::CheckConflicts;
                }
            }
            RmwPhase::CheckConflicts => {
                rmw.pre_acquire_rawa = now - rmw.started;
                // Deadlock safety only requires that no pending write waits
                // on a line locked by *another* processor. A pending write
                // to a line this core itself holds locked (its own earlier
                // Wa, or data under its own lock) cannot participate in a
                // deadlock cycle, so it is excluded from the conflict check
                // even though its address is in the addr-list.
                let conflict = self.wb.iter().any(|e| {
                    let self_locked = shared
                        .coherence
                        .lock_of(e.line)
                        .is_some_and(|l| l.holder == self.id);
                    !self_locked && self.bloom.maybe_contains(e.line.0)
                });
                if conflict {
                    self.stats.rmw_drains += 1;
                    rmw.drain_started = Some(now);
                    rmw.phase = RmwPhase::Drain;
                } else {
                    rmw.acquire_started = Some(now);
                    rmw.phase = RmwPhase::Acquire;
                }
                shared.last_progress = now;
            }
            RmwPhase::Drain => {
                if self.wb.is_empty() {
                    let started = rmw.drain_started.expect("drain phase has a start");
                    self.stats.rmw_cost.write_buffer_cycles += now - started;
                    if config.rmw_atomicity == Atomicity::Type1 {
                        self.stats.rmw_drains += 1;
                    }
                    rmw.drain_started = None;
                    rmw.acquire_started = Some(now);
                    rmw.phase = RmwPhase::Acquire;
                    shared.last_progress = now;
                }
            }
            RmwPhase::Acquire => {
                let use_read_permission =
                    config.rmw_atomicity == Atomicity::Type3 && config.directory_locking;
                let acquired = if use_read_permission {
                    match shared.coherence.read(self.id, rmw.line, now) {
                        Ok(acc) => {
                            let kind = if shared.coherence.state_of(self.id, rmw.line).is_writable()
                            {
                                LockKind::Local
                            } else {
                                LockKind::Directory
                            };
                            match shared.coherence.lock(self.id, rmw.line, kind) {
                                Ok(()) => Some(acc.done_at),
                                Err(_) => None,
                            }
                        }
                        Err(_) => None,
                    }
                } else {
                    match shared.coherence.write(self.id, rmw.line, now) {
                        Ok(acc) => {
                            match shared.coherence.lock(self.id, rmw.line, LockKind::Local) {
                                Ok(()) => Some(acc.done_at),
                                Err(_) => None,
                            }
                        }
                        Err(_) => None,
                    }
                };
                match acquired {
                    Some(done) => {
                        rmw.phase = RmwPhase::Finish { at: done };
                        shared.last_progress = now;
                    }
                    None => {
                        self.stats.lock_retries += 1;
                    }
                }
            }
            RmwPhase::Finish { at } => {
                if now < at {
                    self.rmw = Some(rmw);
                    return;
                }
                // Read value: with the deadlock-avoidance scheme a same-line
                // pending write would have forced a drain, so the buffer is
                // conflict-free here; forward anyway for the unsafe
                // (bloom-disabled) configuration.
                let old = self
                    .wb
                    .iter()
                    .rev()
                    .find(|e| e.addr == rmw.addr)
                    .map(|e| e.value)
                    .unwrap_or_else(|| shared.memory.get(&rmw.addr).copied().unwrap_or(0));
                self.reads.push(old);
                let new = rmw.kind.apply(old);

                if config.rmw_atomicity == Atomicity::Type1 {
                    // Write completes immediately under the lock.
                    shared.memory.insert(rmw.addr, new);
                    let acc = shared
                        .coherence
                        .write(self.id, rmw.line, now)
                        .expect("holder's own write cannot be denied");
                    shared.coherence.unlock(self.id, rmw.line);
                    self.busy_until = acc.done_at;
                } else {
                    // Wa retires into the write buffer; the lock releases
                    // when it pops. (The RMW stays "in flight" if the
                    // buffer is full — rare, but must not lose the write.)
                    if self.wb.len() >= config.write_buffer_entries {
                        self.stats.wb_full_stalls += 1;
                        self.reads.pop(); // undo; retry next cycle
                        self.rmw = Some(rmw);
                        return;
                    }
                    self.wb.push_back(WbEntry {
                        addr: rmw.addr,
                        value: new,
                        line: rmw.line,
                        request_arrives: None,
                        issued_done: None,
                        unlock_on_pop: true,
                    });
                    self.busy_until = now + 1;
                }

                let acquire_started = rmw.acquire_started.expect("acquire phase ran");
                self.stats.rmw_cost.ra_wa_cycles +=
                    (now - acquire_started) + rmw.pre_acquire_rawa + 1;
                self.stats.rmw_count += 1;
                self.stats.mem_ops += 1;
                shared.unique_rmw_lines.insert(rmw.line);
                shared.last_progress = now;

                if config.fence_after_rmw {
                    self.fence_since = Some(now);
                }
                self.rmw = None;
                return;
            }
        }
        self.rmw = Some(rmw);
    }
}
