//! The in-order core model: write buffer, RMW phase machine, and the
//! per-op execution rules.
//!
//! # Timing/visibility discipline
//!
//! A write becomes **globally visible** when its coherence transaction
//! succeeds (the `coherence` crate applies state transitions at issue);
//! its write-buffer slot frees when the transaction's latency has elapsed.
//! Reads resolve their value at issue, after store-forwarding from the
//! local write buffer. Together with FIFO buffer commit this makes each
//! execution of the machine a legal TSO interleaving (cross-validated
//! against the axiomatic model in the integration tests).
//!
//! # RMW phase machine
//!
//! ```text
//!   type-1:             Drain ──► Acquire ──► Finish(commit Wa, unlock)
//!   type-2/3 (bloom):   Bloom ──► WaitAcks ──► CheckConflicts ─┬─► Acquire ──► Finish(Wa→WB)
//!                                                 (hit) ───────┴─► Drain ──► Acquire ...
//! ```
//!
//! Critical-path attribution (Fig. 11a): cycles spent in `Drain` count as
//! *write-buffer* cost; everything else (bloom check, broadcast ack wait,
//! permission acquisition, locking) counts as *Ra/Wa* cost.
//!
//! # Event discipline
//!
//! `Core::tick` returns `true` iff the cycle changed anything (state or
//! statistics); a tick that returns `false` was a pure wait and could have
//! been skipped. Every *future* cycle at which this core can act without
//! outside help — `busy_until`, write-buffer request arrivals and
//! completions, the broadcast-ack deadline, the RMW `Finish` time — is
//! armed in the shared [`Scheduler`](crate::sched::Scheduler) when it is
//! computed. Waits on *other* cores (a line locked by a foreign RMW, a
//! full buffer, a drain) burn no per-cycle work: blocked episodes probe
//! the non-mutating `coherence` denial predicates and attribute their
//! whole duration to the stall counters in one add when they end, which
//! yields exactly the same counts the per-cycle increments used to.

use crate::config::SimConfig;
use crate::sched::EventKind;
use crate::stats::SimStats;
use crate::trace::{Op, Reg, Src, Trace, NUM_REGS};
use bloom::BloomFilter;
use coherence::{CoherenceSystem, LockKind};
use interconnect::{Cycle, Network, TrafficClass};
use rmw_types::fasthash::{FastHashMap, FastHashSet};
use rmw_types::{Addr, Atomicity, CacheLine, RmwKind, Value};
use std::collections::VecDeque;

/// A pending write in the write buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WbEntry {
    pub addr: Addr,
    pub value: Value,
    pub line: CacheLine,
    /// Arrival time of the in-flight coherence request at the home
    /// directory, if one has been sent. Lock denial happens at arrival —
    /// this in-flight window is what makes write-deadlocks possible.
    pub request_arrives: Option<Cycle>,
    /// Completion cycle of the accepted coherence transaction, if accepted.
    pub issued_done: Option<Cycle>,
    /// True for an RMW's `Wa`: popping it releases the line lock.
    pub unlock_on_pop: bool,
}

/// Phase of an in-flight RMW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RmwPhase {
    /// Query/insert the local Bloom filter; broadcast if the address is new.
    Bloom,
    /// Waiting for broadcast acknowledgements.
    WaitAcks { until: Cycle },
    /// Check pending writes against the filter.
    CheckConflicts,
    /// Waiting for the write buffer to empty (type-1, or reverted type-2/3).
    Drain,
    /// Retrying the coherence acquisition + line lock.
    Acquire,
    /// Read half completes at `at`; then commit or enqueue the write half.
    Finish { at: Cycle },
}

/// The in-flight RMW's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct RmwInFlight {
    addr: Addr,
    line: CacheLine,
    kind: RmwKind,
    /// Register receiving the observed old value (`Op::RmwTo`); `None`
    /// appends it to the recorded read stream (`Op::Rmw`).
    dest: Option<Reg>,
    phase: RmwPhase,
    /// Cycle the RMW began (for attribution).
    started: Cycle,
    /// Start of the current drain, if any.
    drain_started: Option<Cycle>,
    /// Start of the acquire phase.
    acquire_started: Option<Cycle>,
    /// First cycle of the current lock-denied acquire episode, if the
    /// acquisition is blocked on a foreign lock. The whole episode is
    /// attributed to `lock_retries` when it ends (one count per denied
    /// cycle, exactly as per-cycle retrying produced).
    lock_blocked_since: Option<Cycle>,
    /// Cycles already attributed to Ra/Wa before the acquire phase
    /// (bloom + ack wait).
    pre_acquire_rawa: Cycle,
}

/// A message on the interconnect: the §3.2 RMW-address broadcast.
/// Coherence transactions stay latency-composed (see the `coherence`
/// crate docs); only the broadcast scheme is message-level. The
/// acknowledgement each receiver returns is pure traffic accounting
/// ([`interconnect::Network::account`]): the sender's stall already
/// equals the precomputed worst-case round trip
/// (`Shared::bcast_ack_latency`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NetMsg {
    /// "Line is now an RMW address" — every receiving core inserts it into
    /// its local filter at delivery time.
    RmwBcast {
        /// The broadcast address.
        line: CacheLine,
        /// The broadcasting core (acks return to it).
        src: usize,
    },
}

/// The machine-wide futex state: one FIFO wait queue per address, plus
/// the pending resume time of each woken core.
///
/// Semantics mirror the kernel's: both futex calls first drain the
/// caller's write buffer (the bucket-lock / syscall serialization point),
/// so a waiter's expected-value check reads *committed* memory and a
/// waker's preceding stores are globally visible before it scans the
/// queue. That ordering is exactly what makes the userspace protocols
/// (store-then-wake vs. check-then-sleep) lose no wakeups.
#[derive(Debug, Default)]
pub(crate) struct FutexTable {
    /// FIFO waiters per address.
    queues: FastHashMap<Addr, VecDeque<usize>>,
    /// Resume cycle of each woken-but-not-yet-resumed core (index = id).
    woken: Vec<Option<Cycle>>,
}

impl FutexTable {
    pub fn new(num_cores: usize) -> Self {
        FutexTable {
            queues: FastHashMap::default(),
            woken: vec![None; num_cores],
        }
    }
}

/// Shared machine state each core ticks against.
#[derive(Debug)]
pub(crate) struct Shared {
    pub coherence: CoherenceSystem,
    pub memory: FastHashMap<Addr, Value>,
    pub unique_rmw_lines: FastHashSet<CacheLine>,
    /// The mesh NoC carrying RMW-address broadcasts and their acks, with
    /// per-hop traffic accounting.
    pub net: Network<NetMsg>,
    /// The event queue (disabled under `StepMode::Lockstep`).
    pub sched: crate::sched::Scheduler,
    /// Set when the reset threshold fires; machine coordinates the reset.
    pub reset_requested: bool,
    /// Set when a line lock was released this cycle — the only event that
    /// can unblock a lock-blocked core, so the event engine re-probes
    /// blocked cores exactly when this fires (cleared by the machine each
    /// cycle).
    pub lock_released: bool,
    /// Cycle of the last globally visible progress (retire or WB pop).
    pub last_progress: Cycle,
    /// Memoized broadcast+ack latency per core (worst-case round trip
    /// over all mesh nodes — identical to the delivery times of the
    /// `net` messages, kept closed-form so the ack wait is one event).
    /// Computed on a core's first broadcast: an O(nodes) sweep per
    /// broadcasting core instead of O(cores × nodes) for every machine,
    /// which used to dominate `Machine::new` for short programs.
    pub bcast_ack_latency: Vec<Option<Cycle>>,
    /// Futex wait queues + pending wakeups.
    pub futex: FutexTable,
}

impl Shared {
    /// The worst-case broadcast+ack round trip from `src`: mesh latency is
    /// symmetric, so the slowest ack returns from the farthest node —
    /// twice the one-way broadcast latency.
    fn bcast_ack_latency(&mut self, src: usize) -> Cycle {
        *self.bcast_ack_latency[src]
            .get_or_insert_with(|| 2 * self.net.mesh().broadcast_latency(src))
    }
}

/// One in-order core.
#[derive(Debug)]
pub(crate) struct Core {
    pub id: usize,
    trace: Trace,
    pc: usize,
    busy_until: Cycle,
    wb: VecDeque<WbEntry>,
    pub bloom: BloomFilter,
    rmw: Option<RmwInFlight>,
    fence_since: Option<Cycle>,
    /// First cycle of the current lock-denied read episode, if any.
    read_blocked_since: Option<Cycle>,
    /// First cycle of the current full-write-buffer stall (a store at
    /// issue, or a type-2/3 `Wa` at retirement), if any.
    wb_stall_since: Option<Cycle>,
    /// Architectural registers (zoo control flow / futex operands).
    regs: [Value; NUM_REGS],
    /// Cycle this core went to sleep on a futex queue, if asleep.
    futex_sleep: Option<Cycle>,
    /// Cycle of the last futex resume, pending attribution to
    /// `wake_to_acquire_cycles` at the next completed RMW.
    woken_at: Option<Cycle>,
    /// First back-edge cycle of the current spin episode, if spinning.
    spin_since: Option<Cycle>,
    /// Values observed by reads and RMW reads, in program order.
    pub reads: Vec<Value>,
    pub stats: SimStats,
}

impl Core {
    pub fn new(id: usize, trace: Trace, config: &SimConfig) -> Self {
        // Every destination-less read and RMW records one observed value;
        // sizing the log up front keeps reallocation out of the hot tick.
        let recorded = trace
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Read(_) | Op::Rmw(..)))
            .count();
        Core {
            id,
            trace,
            pc: 0,
            busy_until: 0,
            wb: VecDeque::new(),
            bloom: BloomFilter::new(config.bloom_bytes, config.bloom_hashes),
            rmw: None,
            fence_since: None,
            read_blocked_since: None,
            wb_stall_since: None,
            regs: [0; NUM_REGS],
            futex_sleep: None,
            woken_at: None,
            spin_since: None,
            reads: Vec::with_capacity(recorded),
            stats: SimStats::default(),
        }
    }

    /// True when the core has fully finished.
    pub fn done(&self) -> bool {
        self.pc >= self.trace.len()
            && self.wb.is_empty()
            && self.rmw.is_none()
            && self.fence_since.is_none()
            && self.futex_sleep.is_none()
    }

    /// True while this core is blocked on a *foreign* line lock (a denied
    /// read, or a denied RMW acquisition). These are the only waits whose
    /// resolution depends on another core's progress, so the event engine
    /// re-ticks such cores after any acting cycle instead of the core
    /// arming its own wakeup.
    pub fn blocked_on_foreign_lock(&self) -> bool {
        self.read_blocked_since.is_some()
            || self.rmw.is_some_and(|r| r.lock_blocked_since.is_some())
    }

    /// True when the core is draining its write buffer for an RMW.
    pub fn draining_for_rmw(&self) -> bool {
        matches!(
            self.rmw,
            Some(RmwInFlight {
                phase: RmwPhase::Drain,
                ..
            })
        )
    }

    /// One simulation cycle. Returns `true` iff anything (state or stats)
    /// changed — `false` means the tick was a pure wait that a
    /// cycle-skipping engine may elide.
    pub fn tick(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) -> bool {
        let changed = self.tick_inner(now, shared, config);
        if changed {
            self.arm_followup(now, shared, config);
        }
        changed
    }

    /// Arms a `now + 1` self-wakeup when the end-of-tick state demands an
    /// action next cycle that no completion event covers: an unsent
    /// write-buffer request inside the issue window (fresh store, denial
    /// re-send, window shift after a pop, eager-drain expansion), an RMW
    /// phase that executes on its next tick, or a fence over an already
    /// empty buffer. Called only after a tick that changed something —
    /// these conditions can only arise from acting ticks.
    fn arm_followup(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) {
        let eager = config.parallel_drain && self.draining_for_rmw();
        let window = if eager {
            self.wb.len()
        } else {
            config.wb_outstanding.min(self.wb.len())
        };
        let pending_send = self
            .wb
            .iter()
            .take(window)
            .any(|e| e.issued_done.is_none() && e.request_arrives.is_none());
        let phase_steps = self.rmw.is_some_and(|r| match r.phase {
            RmwPhase::Bloom | RmwPhase::CheckConflicts => true,
            RmwPhase::Acquire => r.lock_blocked_since.is_none(),
            RmwPhase::Drain => self.wb.is_empty(),
            RmwPhase::WaitAcks { .. } | RmwPhase::Finish { .. } => false,
        });
        let fence_ready = self.fence_since.is_some() && self.wb.is_empty();
        if (pending_send || phase_steps || fence_ready) && self.busy_until != now + 1 {
            // busy_until == now + 1 means set_busy already armed this
            // exact wakeup during this tick.
            shared
                .sched
                .wake_core(now, now + 1, self.id, EventKind::Advance);
        }
    }

    fn tick_inner(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) -> bool {
        let mut changed = self.process_write_buffer(now, shared, config);

        if self.rmw.is_some() {
            return self.advance_rmw(now, shared, config) || changed;
        }

        if let Some(since) = self.fence_since {
            if self.wb.is_empty() {
                self.stats.fence_cycles += now - since;
                self.fence_since = None;
                shared.last_progress = now;
                changed = true;
            } else {
                // Waiting on our own buffer: its completion events are
                // already armed.
                return changed;
            }
        }

        if let Some(since) = self.futex_sleep {
            // Asleep on a futex queue. The buffer was drained before the
            // sleep, the phase machines are idle, so a sleeping core's
            // tick is a pure wait until the waker-armed resume cycle —
            // the event engine skips straight to it.
            match shared.futex.woken[self.id] {
                Some(resume) if now >= resume => {
                    shared.futex.woken[self.id] = None;
                    self.futex_sleep = None;
                    self.stats.futex_wakeups += 1;
                    self.stats.blocked_cycles += now - since;
                    self.woken_at = Some(now);
                    shared.last_progress = now;
                    changed = true;
                    // Fall through: the next op issues this very cycle.
                }
                _ => return changed,
            }
        }

        if self.busy_until > now || self.pc >= self.trace.len() {
            return changed;
        }

        let op = self.trace.ops()[self.pc];
        match op {
            Op::Compute(n) => {
                self.set_busy(now, now + Cycle::from(n), shared);
                self.retire(now, shared);
            }
            Op::Fence => {
                self.fence_since = Some(now);
                self.retire(now, shared);
            }
            Op::Write(addr, value) => {
                if !self.issue_write(now, shared, config, addr, value) {
                    return changed;
                }
            }
            Op::WriteFrom(addr, reg) => {
                let value = self.regs[reg as usize];
                if !self.issue_write(now, shared, config, addr, value) {
                    return changed;
                }
            }
            Op::Read(addr) => {
                if !self.issue_read(now, shared, config, addr, None) {
                    return changed;
                }
            }
            Op::ReadTo(reg, addr) => {
                if !self.issue_read(now, shared, config, addr, Some(reg)) {
                    return changed;
                }
            }
            Op::Rmw(addr, kind) => self.start_rmw(now, shared, config, addr, kind, None),
            Op::RmwTo(reg, addr, kind) => {
                self.start_rmw(now, shared, config, addr, kind, Some(reg));
            }
            Op::MovImm(reg, value) => {
                self.regs[reg as usize] = value;
                self.set_busy(now, now + 1, shared);
                self.retire(now, shared);
            }
            Op::AddImm(reg, value) => {
                self.regs[reg as usize] = self.regs[reg as usize].wrapping_add(value);
                self.set_busy(now, now + 1, shared);
                self.retire(now, shared);
            }
            Op::Jump(target) => {
                self.set_busy(now, now + 1, shared);
                self.branch_to(now, target as usize, shared);
            }
            Op::Branch {
                cond,
                lhs,
                rhs,
                target,
            } => {
                let l = self.regs[lhs as usize];
                let r = self.resolve(rhs);
                self.set_busy(now, now + 1, shared);
                if cond.eval(l, r) {
                    self.branch_to(now, target as usize, shared);
                } else {
                    // A fall-through exits the loop the branch guarded.
                    self.end_spin(now);
                    self.retire(now, shared);
                }
            }
            Op::FutexWait(addr, expected) => {
                if !self.wb.is_empty() {
                    // Kernel entry serializes with memory (the wake path
                    // takes the same bucket lock): drain first, then
                    // re-dispatch this op against committed state.
                    self.fence_since = Some(now);
                    return true;
                }
                let expected = self.resolve(expected);
                let v = shared.memory.get(&addr).copied().unwrap_or(0);
                self.end_spin(now);
                if v == expected {
                    self.stats.futex_waits += 1;
                    self.woken_at = None;
                    self.futex_sleep = Some(now);
                    shared
                        .futex
                        .queues
                        .entry(addr)
                        .or_default()
                        .push_back(self.id);
                } else {
                    // EAGAIN: the value moved on — never enqueued, so a
                    // failed check can never be woken.
                    self.stats.futex_immediate += 1;
                    self.set_busy(now, now + config.futex_latency, shared);
                }
                self.retire(now, shared);
            }
            Op::FutexWake(addr, n) => {
                if !self.wb.is_empty() {
                    // Same serialization as the wait side: our preceding
                    // stores are globally visible before the queue scan,
                    // so no waiter that checked before us is missed.
                    self.fence_since = Some(now);
                    return true;
                }
                let mut woke = 0u32;
                if let Some(q) = shared.futex.queues.get_mut(&addr) {
                    while woke < n {
                        let Some(id) = q.pop_front() else { break };
                        let resume = now + config.futex_latency;
                        shared.futex.woken[id] = Some(resume);
                        shared
                            .sched
                            .wake_core(now, resume, id, EventKind::FutexWake);
                        woke += 1;
                    }
                }
                self.stats.futex_wakes += u64::from(woke);
                self.set_busy(now, now + config.futex_latency, shared);
                self.retire(now, shared);
            }
        }
        true
    }

    /// Resolves a branch/futex operand against the register file.
    fn resolve(&self, src: Src) -> Value {
        match src {
            Src::Imm(v) => v,
            Src::Reg(r) => self.regs[r as usize],
        }
    }

    /// Issues a load (recorded when `dest` is `None`, into a register
    /// otherwise). Returns `false` when blocked on a foreign line lock.
    fn issue_read(
        &mut self,
        now: Cycle,
        shared: &mut Shared,
        config: &SimConfig,
        addr: Addr,
        dest: Option<Reg>,
    ) -> bool {
        // Store forwarding from the youngest matching buffer entry — but
        // only while that store is not yet globally visible. An accepted
        // entry's value is already in memory (the slot only lingers for
        // latency bookkeeping), and a foreign write may have been
        // serialized after it; forwarding then would resurrect an
        // overwritten value, which TSO forbids.
        if let Some(e) = self.wb.iter().rev().find(|e| e.addr == addr) {
            if e.issued_done.is_none() {
                let v = e.value;
                self.deliver_read(v, dest);
                self.set_busy(now, now + config.coherence.l1_latency, shared);
                self.stats.mem_ops += 1;
                self.retire(now, shared);
                return true;
            }
        }
        let line = addr.line(config.line_size);
        if self.read_blocked_since.is_some() {
            // Blocked re-poll: a non-mutating probe, so lockstep's
            // per-cycle re-polls and the event engine's release-time
            // re-probes leave identical protocol statistics.
            if shared.coherence.read_denied_by(self.id, line).is_some() {
                return false;
            }
        }
        let acc = match shared.coherence.read(self.id, line, now) {
            Ok(acc) => acc,
            Err(_) => {
                // First denial: blocked on a foreign lock; woken when the
                // holder makes progress (its unlock arms an Advance
                // event). Both engines attempt the transaction at this
                // same cycle, so the denial count stays engine-identical.
                self.read_blocked_since = Some(now);
                return false;
            }
        };
        if let Some(since) = self.read_blocked_since.take() {
            self.stats.lock_retries += now - since;
        }
        let v = shared.memory.get(&addr).copied().unwrap_or(0);
        self.deliver_read(v, dest);
        self.set_busy(now, acc.done_at, shared);
        self.stats.mem_ops += 1;
        self.retire(now, shared);
        true
    }

    fn deliver_read(&mut self, value: Value, dest: Option<Reg>) {
        match dest {
            None => self.reads.push(value),
            Some(r) => self.regs[r as usize] = value,
        }
    }

    /// Enqueues a store. Returns `false` when stalled on a full buffer
    /// (woken by our own WB completion).
    fn issue_write(
        &mut self,
        now: Cycle,
        shared: &mut Shared,
        config: &SimConfig,
        addr: Addr,
        value: Value,
    ) -> bool {
        if self.wb.len() >= config.write_buffer_entries {
            if self.wb_stall_since.is_none() {
                self.wb_stall_since = Some(now);
            }
            return false;
        }
        if let Some(since) = self.wb_stall_since.take() {
            self.stats.wb_full_stalls += now - since;
        }
        self.wb.push_back(WbEntry {
            addr,
            value,
            line: addr.line(config.line_size),
            request_arrives: None,
            issued_done: None,
            unlock_on_pop: false,
        });
        self.set_busy(now, now + 1, shared);
        self.stats.mem_ops += 1;
        self.retire(now, shared);
        true
    }

    fn start_rmw(
        &mut self,
        now: Cycle,
        shared: &mut Shared,
        config: &SimConfig,
        addr: Addr,
        kind: RmwKind,
        dest: Option<Reg>,
    ) {
        let line = addr.line(config.line_size);
        let phase = match (config.rmw_atomicity, config.bloom_enabled) {
            (Atomicity::Type1, _) => RmwPhase::Drain,
            (_, true) => RmwPhase::Bloom,
            (_, false) => RmwPhase::Acquire,
        };
        self.rmw = Some(RmwInFlight {
            addr,
            line,
            kind,
            dest,
            phase,
            started: now,
            drain_started: (phase == RmwPhase::Drain).then_some(now),
            acquire_started: (phase == RmwPhase::Acquire).then_some(now),
            lock_blocked_since: None,
            pre_acquire_rawa: 0,
        });
        self.retire(now, shared);
    }

    /// Redirects control flow to `target` (a taken branch or jump),
    /// maintaining the spin-episode accounting: a back-edge is a spin
    /// retry, a forward transfer exits the current loop.
    fn branch_to(&mut self, now: Cycle, target: usize, shared: &mut Shared) {
        if target <= self.pc {
            self.stats.spin_retries += 1;
            if self.spin_since.is_none() {
                self.spin_since = Some(now);
            }
        } else {
            self.end_spin(now);
        }
        self.pc = target;
        self.stats.ops += 1;
        shared.last_progress = now;
    }

    /// Closes the current spin episode, attributing its length in bulk
    /// (cycle-identical in both engines: episode boundaries are retire
    /// events both engines execute at the same cycles).
    fn end_spin(&mut self, now: Cycle) {
        if let Some(since) = self.spin_since.take() {
            self.stats.spin_cycles += now - since;
        }
    }

    fn retire(&mut self, now: Cycle, shared: &mut Shared) {
        self.pc += 1;
        self.stats.ops += 1;
        shared.last_progress = now;
    }

    /// Sets `busy_until` and arms the issue wakeup (clamped to `now + 1`:
    /// an already-expired deadline still needs the next tick, exactly as
    /// lockstep would take it).
    fn set_busy(&mut self, now: Cycle, until: Cycle, shared: &mut Shared) {
        self.busy_until = until;
        shared
            .sched
            .wake_core(now, until.max(now + 1), self.id, EventKind::CoreReady);
    }

    /// Sends coherence requests for write-buffer entries and pops completed
    /// heads. During a parallel drain every entry's request is in flight at
    /// once; otherwise only the head's.
    ///
    /// A request is *sent* (after `request_latency` it arrives at the home
    /// directory), then *accepted* (the line was not locked: the write
    /// becomes globally visible and the completion clock starts) or
    /// *denied* (locked by another core's RMW: the request is re-sent).
    /// Acceptance is kept in FIFO order so visibility respects TSO.
    fn process_write_buffer(
        &mut self,
        now: Cycle,
        shared: &mut Shared,
        config: &SimConfig,
    ) -> bool {
        if self.wb.is_empty() {
            return false;
        }
        let mut changed = false;
        let eager = config.parallel_drain && self.draining_for_rmw();
        let issue_count = if eager {
            self.wb.len()
        } else {
            config.wb_outstanding.min(self.wb.len())
        };

        let id = self.id;
        let mut all_prior_accepted = true;
        let mut lock_retries = 0;
        for e in self.wb.iter_mut().take(issue_count) {
            if e.issued_done.is_some() {
                continue;
            }
            match e.request_arrives {
                None => {
                    let arrival = now + shared.coherence.request_latency(id, e.line);
                    e.request_arrives = Some(arrival);
                    // Clamped like every arm: a zero-latency arrival is
                    // still acted on at the next tick, as in lockstep.
                    shared.sched.wake_core(
                        now,
                        arrival.max(now + 1),
                        id,
                        EventKind::WbRequestArrival,
                    );
                    changed = true;
                }
                Some(arr) if now >= arr && all_prior_accepted => {
                    match shared.coherence.write(id, e.line, now) {
                        Ok(acc) => {
                            shared.memory.insert(e.addr, e.value);
                            e.issued_done = Some(acc.done_at);
                            shared.sched.wake_core(
                                now,
                                acc.done_at.max(now + 1),
                                id,
                                EventKind::WbCompletion,
                            );
                        }
                        Err(_) => {
                            // Denied by a lock: retry from scratch (the
                            // re-send goes out next cycle, so the retry
                            // cadence is one request round trip).
                            lock_retries += 1;
                            e.request_arrives = None;
                        }
                    }
                    changed = true;
                }
                Some(_) => {} // in flight, or waiting for FIFO order
            }
            all_prior_accepted &= e.issued_done.is_some();
        }
        self.stats.lock_retries += lock_retries;

        // Pop completed head entries (one per cycle is enough at this
        // timescale, but draining benefits from popping all ready heads).
        while let Some(head) = self.wb.front() {
            match head.issued_done {
                Some(done) if done <= now => {
                    let e = self.wb.pop_front().expect("head exists");
                    // Release the line lock only once the *last* pending Wa
                    // to this line commits: back-to-back RMWs to one line
                    // keep it locked across both, whether the successor's
                    // Wa is already buffered or its RMW is still in flight
                    // holding the lock (Finish phase).
                    let later_wa_same_line =
                        self.wb.iter().any(|w| w.unlock_on_pop && w.line == e.line);
                    let in_flight_same_line = self.rmw.is_some_and(|r| {
                        r.line == e.line && matches!(r.phase, RmwPhase::Finish { .. })
                    });
                    if e.unlock_on_pop && !later_wa_same_line && !in_flight_same_line {
                        shared.coherence.unlock(self.id, e.line);
                        shared.lock_released = true;
                    }
                    shared.last_progress = now;
                    changed = true;
                }
                _ => break,
            }
        }
        changed
    }

    fn advance_rmw(&mut self, now: Cycle, shared: &mut Shared, config: &SimConfig) -> bool {
        let mut rmw = self.rmw.expect("advance_rmw called with RMW in flight");
        match rmw.phase {
            RmwPhase::Bloom => {
                let key = rmw.line.0;
                if !self.bloom.maybe_contains(key) {
                    self.bloom.insert(key);
                    shared.net.broadcast(
                        self.id,
                        NetMsg::RmwBcast {
                            line: rmw.line,
                            src: self.id,
                        },
                        now,
                        TrafficClass::RmwBroadcast,
                    );
                    self.stats.rmw_broadcasts += 1;
                    if let Some(threshold) = config.bloom_reset_threshold {
                        if self.bloom.insertions() >= threshold {
                            shared.reset_requested = true;
                        }
                    }
                    let until = now + shared.bcast_ack_latency(self.id);
                    shared.sched.wake_core(
                        now,
                        until.max(now + 1),
                        self.id,
                        EventKind::BroadcastAcks,
                    );
                    rmw.phase = RmwPhase::WaitAcks { until };
                } else {
                    rmw.phase = RmwPhase::CheckConflicts;
                }
                shared.last_progress = now;
            }
            RmwPhase::WaitAcks { until } => {
                if now >= until {
                    rmw.phase = RmwPhase::CheckConflicts;
                } else {
                    self.rmw = Some(rmw);
                    return false;
                }
            }
            RmwPhase::CheckConflicts => {
                rmw.pre_acquire_rawa = now - rmw.started;
                // Deadlock safety only requires that no pending write waits
                // on a line locked by *another* processor. A pending write
                // to a line this core itself holds locked (its own earlier
                // Wa, or data under its own lock) cannot participate in a
                // deadlock cycle, so it is excluded from the conflict check
                // even though its address is in the addr-list.
                let conflict = self.wb.iter().any(|e| {
                    let self_locked = shared
                        .coherence
                        .lock_of(e.line)
                        .is_some_and(|l| l.holder == self.id);
                    !self_locked && self.bloom.maybe_contains(e.line.0)
                });
                if conflict {
                    self.stats.rmw_drains += 1;
                    rmw.drain_started = Some(now);
                    rmw.phase = RmwPhase::Drain;
                } else {
                    rmw.acquire_started = Some(now);
                    rmw.phase = RmwPhase::Acquire;
                }
                shared.last_progress = now;
            }
            RmwPhase::Drain => {
                if self.wb.is_empty() {
                    let started = rmw.drain_started.expect("drain phase has a start");
                    self.stats.rmw_cost.write_buffer_cycles += now - started;
                    if config.rmw_atomicity == Atomicity::Type1 {
                        self.stats.rmw_drains += 1;
                    }
                    rmw.drain_started = None;
                    rmw.acquire_started = Some(now);
                    rmw.phase = RmwPhase::Acquire;
                    shared.last_progress = now;
                } else {
                    // Waiting on our own buffer: completions are armed.
                    self.rmw = Some(rmw);
                    return false;
                }
            }
            RmwPhase::Acquire => {
                if shared
                    .coherence
                    .acquire_denied_by(self.id, rmw.line)
                    .is_some()
                {
                    // Blocked on a foreign lock; the holder's unlock arms
                    // an Advance wakeup. The episode length is attributed
                    // to `lock_retries` below, one per denied cycle.
                    if rmw.lock_blocked_since.is_none() {
                        rmw.lock_blocked_since = Some(now);
                    }
                    self.rmw = Some(rmw);
                    return false;
                }
                if let Some(since) = rmw.lock_blocked_since.take() {
                    self.stats.lock_retries += now - since;
                }
                let use_read_permission =
                    config.rmw_atomicity == Atomicity::Type3 && config.directory_locking;
                let done = if use_read_permission {
                    let acc = shared
                        .coherence
                        .read(self.id, rmw.line, now)
                        .expect("no foreign lock: read permission proceeds");
                    let kind = if shared.coherence.state_of(self.id, rmw.line).is_writable() {
                        LockKind::Local
                    } else {
                        LockKind::Directory
                    };
                    shared
                        .coherence
                        .lock(self.id, rmw.line, kind)
                        .expect("no foreign lock: locking proceeds");
                    acc.done_at
                } else {
                    let acc = shared
                        .coherence
                        .write(self.id, rmw.line, now)
                        .expect("no foreign lock: write permission proceeds");
                    shared
                        .coherence
                        .lock(self.id, rmw.line, LockKind::Local)
                        .expect("no foreign lock: locking proceeds");
                    acc.done_at
                };
                shared
                    .sched
                    .wake_core(now, done.max(now + 1), self.id, EventKind::RmwFinish);
                rmw.phase = RmwPhase::Finish { at: done };
                shared.last_progress = now;
            }
            RmwPhase::Finish { at } => {
                if now < at {
                    self.rmw = Some(rmw);
                    return false;
                }
                // The Wa of a type-2/3 RMW retires into the write buffer;
                // if the buffer is full the RMW stays in flight and the
                // stall is attributed when the slot frees (our own
                // completion events wake us). Checked before the read half
                // commits so nothing needs undoing.
                if config.rmw_atomicity != Atomicity::Type1
                    && self.wb.len() >= config.write_buffer_entries
                {
                    if self.wb_stall_since.is_none() {
                        self.wb_stall_since = Some(now);
                    }
                    self.rmw = Some(rmw);
                    return false;
                }
                // Read value: with the deadlock-avoidance scheme a same-line
                // pending write would have forced a drain, so the buffer is
                // conflict-free here; forward anyway for the unsafe
                // (bloom-disabled) configuration. As in `issue_read`, only a
                // not-yet-visible entry may forward — an accepted one is
                // already in memory and possibly overwritten.
                let old = self
                    .wb
                    .iter()
                    .rev()
                    .find(|e| e.addr == rmw.addr)
                    .filter(|e| e.issued_done.is_none())
                    .map(|e| e.value)
                    .unwrap_or_else(|| shared.memory.get(&rmw.addr).copied().unwrap_or(0));
                self.deliver_read(old, rmw.dest);
                let new = rmw.kind.apply(old);

                if config.rmw_atomicity == Atomicity::Type1 {
                    // Write completes immediately under the lock.
                    shared.memory.insert(rmw.addr, new);
                    let acc = shared
                        .coherence
                        .write(self.id, rmw.line, now)
                        .expect("holder's own write cannot be denied");
                    shared.coherence.unlock(self.id, rmw.line);
                    shared.lock_released = true;
                    self.set_busy(now, acc.done_at, shared);
                } else {
                    if let Some(since) = self.wb_stall_since.take() {
                        self.stats.wb_full_stalls += now - since;
                    }
                    self.wb.push_back(WbEntry {
                        addr: rmw.addr,
                        value: new,
                        line: rmw.line,
                        request_arrives: None,
                        issued_done: None,
                        unlock_on_pop: true,
                    });
                    self.set_busy(now, now + 1, shared);
                }

                let acquire_started = rmw.acquire_started.expect("acquire phase ran");
                self.stats.rmw_cost.ra_wa_cycles +=
                    (now - acquire_started) + rmw.pre_acquire_rawa + 1;
                // Wake-to-acquire: the first RMW a core completes after a
                // futex resume is (in every zoo kernel) its lock
                // re-acquisition — the handoff latency of Fig.-style
                // fairness plots.
                if let Some(woken) = self.woken_at.take() {
                    self.stats.wake_to_acquire_cycles += now - woken;
                    self.stats.handoffs += 1;
                }
                self.stats.rmw_count += 1;
                self.stats.mem_ops += 1;
                shared.unique_rmw_lines.insert(rmw.line);
                shared.last_progress = now;

                if config.fence_after_rmw {
                    self.fence_since = Some(now);
                }
                self.rmw = None;
                return true;
            }
        }
        self.rmw = Some(rmw);
        true
    }
}
