//! Property tests for the simulator: liveness (no deadlock with the
//! avoidance scheme), determinism, RMW atomicity, and TSO value sanity
//! under arbitrary trace mixes.

use proptest::prelude::*;
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use tso_sim::{Machine, Op, SimConfig, Trace};

/// Random op over a small set of cache lines.
fn arb_op(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..lines).prop_map(|l| Op::Read(Addr(l * 64))),
        3 => ((0..lines), (1u64..50)).prop_map(|(l, v)| Op::Write(Addr(l * 64), v)),
        2 => (0..lines).prop_map(|l| Op::Rmw(Addr(l * 64), RmwKind::FetchAndAdd(1))),
        1 => Just(Op::Fence),
        1 => (1u32..20).prop_map(Op::Compute),
    ]
}

fn arb_traces(cores: usize, lines: u64, max_len: usize) -> impl Strategy<Value = Vec<Trace>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_op(lines), 1..max_len).prop_map(Trace::new),
        cores..=cores,
    )
}

fn run(traces: Vec<Trace>, atomicity: Atomicity) -> tso_sim::SimResult {
    let mut cfg = SimConfig::small(traces.len());
    cfg.rmw_atomicity = atomicity;
    Machine::new(cfg, traces).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With the Bloom-filter scheme enabled, NO trace mix deadlocks, under
    /// any RMW implementation — the paper's deadlock-safety property.
    #[test]
    fn never_deadlocks_with_avoidance(traces in arb_traces(3, 4, 20)) {
        for atomicity in Atomicity::ALL {
            let r = run(traces.clone(), atomicity);
            prop_assert!(!r.deadlocked, "{atomicity} deadlocked");
        }
    }

    /// The machine is deterministic: same traces, same everything.
    #[test]
    fn deterministic(traces in arb_traces(2, 3, 15)) {
        for atomicity in Atomicity::ALL {
            let a = run(traces.clone(), atomicity);
            let b = run(traces.clone(), atomicity);
            prop_assert_eq!(a.stats, b.stats);
            prop_assert_eq!(a.reads, b.reads);
            prop_assert_eq!(a.memory, b.memory);
        }
    }

    /// RMW atomicity: concurrent FAA(1)s to one line never lose an update —
    /// the final value equals the RMW count, and the observed old values
    /// are exactly 0..n, for every atomicity type.
    #[test]
    fn no_lost_updates(
        per_core in proptest::collection::vec(1usize..8, 2..4),
    ) {
        for atomicity in Atomicity::ALL {
            let traces: Vec<Trace> = per_core
                .iter()
                .map(|&n| Trace::new(vec![Op::rmw(Addr(0)); n]))
                .collect();
            let total: usize = per_core.iter().sum();
            let r = run(traces, atomicity);
            prop_assert!(!r.deadlocked);
            prop_assert_eq!(r.memory.get(&Addr(0)), Some(&(total as Value)));
            let mut seen: Vec<Value> = r.reads.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..total as Value).collect::<Vec<_>>());
        }
    }

    /// Value sanity: every read returns 0 or a value some write (or RMW
    /// chain) could have produced — no out-of-thin-air values.
    #[test]
    fn no_thin_air(traces in arb_traces(2, 3, 15)) {
        let mut possible: std::collections::BTreeSet<Value> =
            (0..50).collect();
        let rmws: u64 = traces.iter().map(|t| t.rmws() as u64).sum();
        for base in 0..50u64 {
            for k in 1..=rmws {
                possible.insert(base + k);
            }
        }
        let r = run(traces, Atomicity::Type2);
        for v in r.reads.iter().flatten() {
            prop_assert!(possible.contains(v), "thin-air value {v}");
        }
    }

    /// Per-location writes are totally ordered: a single-writer line read
    /// twice by another core never goes backwards (coherence order).
    #[test]
    fn reads_never_go_backwards(n_writes in 1usize..10) {
        let writer = Trace::new(
            (1..=n_writes as u64).map(|v| Op::write(Addr(0), v)).collect(),
        );
        let reader = Trace::new(vec![Op::read(Addr(0)); 8]);
        let r = run(vec![writer, reader], Atomicity::Type1);
        let observed = &r.reads[1];
        for w in observed.windows(2) {
            prop_assert!(w[0] <= w[1], "coherence violation: {observed:?}");
        }
    }

    /// Fences bound the write buffer: after the final op, memory holds
    /// every thread's last write to each line.
    #[test]
    fn final_memory_complete(traces in arb_traces(2, 3, 12)) {
        let r = run(traces.clone(), Atomicity::Type3);
        prop_assert!(!r.deadlocked);
        // every line written by exactly one core ends with one of that
        // core's written values
        for line in 0..3u64 {
            let addr = Addr(line * 64);
            let writers: Vec<usize> = traces
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.ops().iter().any(|o| {
                        matches!(o, Op::Write(a, _) | Op::Rmw(a, _) if *a == addr)
                    })
                })
                .map(|(i, _)| i)
                .collect();
            if writers.is_empty() {
                prop_assert!(!r.memory.contains_key(&addr) || r.memory[&addr] == 0);
            } else {
                prop_assert!(r.memory.contains_key(&addr), "written line missing");
            }
        }
    }
}
