//! Edge-path coverage for the simulator's §3.2/§3.3 mechanisms that the
//! mainline tests never drive:
//!
//! * a **Bloom-filter false positive** forcing a type-2 RMW to revert to a
//!   type-1 drain even though no pending write really conflicts (paper
//!   §3.2, "False Positives" — soundness costs only performance);
//! * a **full write buffer** stalling both a store at issue and a type-2
//!   RMW's `Wa` at retirement (the `Finish`-phase retry path);
//! * the **Fig. 10 deadlock detector**: the watchdog fires one threshold
//!   after the last globally visible progress, and only then.

use bloom::BloomFilter;
use rmw_types::{Addr, Atomicity};
use tso_sim::{Machine, Op, SimConfig, Trace};

fn addr(i: u64) -> Addr {
    Addr(i * 64) // one model location per cache line
}

/// Finds a line address that is a false positive of a `size_bytes`-byte
/// 3-hash filter containing exactly `inserted`, and definitely absent from
/// a 64-byte filter containing the same key (so the control run below is
/// conflict-free). The hashes are deterministic, so the search is too.
fn false_positive_line(inserted: u64) -> u64 {
    let mut tiny = BloomFilter::new(1, 3);
    tiny.insert(inserted);
    let mut control = BloomFilter::new(64, 3);
    control.insert(inserted);
    (1..10_000)
        .map(|i| i * 64)
        .find(|&l| l != inserted && tiny.maybe_contains(l) && !control.maybe_contains(l))
        .expect("an 8-bit filter must produce a false positive line")
}

#[test]
fn bloom_false_positive_reverts_to_drain_without_changing_outcomes() {
    let a = addr(0);
    let b = Addr(false_positive_line(a.0));
    let run = |bloom_bytes: usize| {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        cfg.bloom_bytes = bloom_bytes;
        // rmw(a) puts `a` in the addr-list; W b is then pending when the
        // second RMW runs its conflict check.
        let t = Trace::new(vec![Op::rmw(a), Op::write(b, 9), Op::rmw(a)]);
        Machine::new(cfg, vec![t]).run()
    };

    // 8-bit filter: `b` aliases `a`'s bits, so the pending W b reads as a
    // conflict and the second RMW must conservatively drain.
    let fp = run(1);
    assert!(!fp.deadlocked);
    assert_eq!(
        fp.stats.rmw_drains, 1,
        "false positive must force exactly one reverted drain"
    );
    assert!(fp.stats.rmw_cost.write_buffer_cycles > 0);

    // 64-byte filter: no aliasing (checked in `false_positive_line`), no
    // drain — and the architectural outcome is identical either way.
    let clean = run(64);
    assert_eq!(clean.stats.rmw_drains, 0, "no real conflict exists");
    assert_eq!(
        fp.reads, clean.reads,
        "false positives cost cycles, not correctness"
    );
    assert_eq!(fp.memory, clean.memory);
    assert_eq!(fp.reads[0], vec![0, 1], "two FAA(1)s to a read 0 then 1");
}

#[test]
fn full_write_buffer_stalls_store_issue() {
    let mut cfg = SimConfig::small(1);
    cfg.write_buffer_entries = 1;
    // Second store must wait a full coherence round-trip for the slot.
    let t = Trace::new(vec![Op::write(addr(0), 1), Op::write(addr(1), 2)]);
    let r = Machine::new(cfg, vec![t]).run();
    assert!(!r.deadlocked);
    assert!(
        r.stats.wb_full_stalls > 0,
        "the one-entry buffer must stall the second store"
    );
    assert_eq!(r.memory.get(&addr(0)), Some(&1));
    assert_eq!(r.memory.get(&addr(1)), Some(&2));
}

#[test]
fn rmw_write_half_retries_while_write_buffer_is_full() {
    // Core 1 keeps line L locked for a long window (back-to-back RMWs hold
    // the lock until the last Wa pops), so core 0's pending W L is denied
    // again and again and its buffer slot stays occupied. Core 0's own RMW
    // to a different line M then reaches `Finish` with a full buffer and
    // must retry the Wa retirement, not lose it. The Bloom filter is
    // disabled so the conflict check cannot turn this into a drain first.
    let l = addr(0);
    let m = addr(1);
    let mut cfg = SimConfig::small(2);
    cfg.rmw_atomicity = Atomicity::Type2;
    cfg.bloom_enabled = false;
    cfg.write_buffer_entries = 1;
    let t0 = Trace::new(vec![Op::write(l, 9), Op::rmw(m)]);
    let t1 = Trace::new(vec![Op::rmw(l); 6]);
    let r = Machine::new(cfg, vec![t0, t1]).run();
    assert!(!r.deadlocked, "no cross dependency: this must resolve");
    assert!(
        r.stats.wb_full_stalls > 10,
        "Wa(m) must spin on the full buffer while W l is lock-denied, got {}",
        r.stats.wb_full_stalls
    );
    assert_eq!(r.stats.rmw_count, 7);
    // Core 1's six FAA(1)s serialize before core 0's store commits.
    assert_eq!(r.reads[1], (0..6).collect::<Vec<u64>>());
    assert_eq!(r.reads[0], vec![0], "rmw(m) reads the initial value");
    assert_eq!(
        r.memory.get(&l),
        Some(&9),
        "core 0's delayed store lands last"
    );
    assert_eq!(r.memory.get(&m), Some(&1));
}

/// The Fig. 10 write-deadlock with the filter disabled, at a configurable
/// watchdog threshold.
fn fig10_unsafe(threshold: u64) -> tso_sim::SimResult {
    let mut cfg = SimConfig::small(2);
    cfg.rmw_atomicity = Atomicity::Type2;
    cfg.bloom_enabled = false;
    cfg.deadlock_threshold = threshold;
    let t0 = Trace::new(vec![Op::write(addr(0), 1), Op::rmw(addr(1))]);
    let t1 = Trace::new(vec![Op::write(addr(1), 1), Op::rmw(addr(0))]);
    Machine::new(cfg, vec![t0, t1]).run()
}

#[test]
fn deadlock_detector_fires_one_threshold_after_last_progress() {
    let lo = fig10_unsafe(5_000);
    let hi = fig10_unsafe(30_000);
    assert!(lo.deadlocked && hi.deadlocked);
    // Both runs reach the same wedged state at the same cycle; only the
    // quiet period differs, so the cycle counts differ by the threshold
    // delta exactly.
    assert!(lo.stats.cycles > 5_000);
    assert_eq!(
        hi.stats.cycles - lo.stats.cycles,
        25_000,
        "detector latency must scale 1:1 with the threshold"
    );
}

#[test]
fn quiet_but_progressing_cores_are_not_flagged() {
    // A compute bubble shorter than the threshold is fine; one longer than
    // the threshold is indistinguishable from a wedge to the watchdog —
    // exactly the documented quiet-period semantics of
    // `SimConfig::deadlock_threshold`.
    let run = |bubble: u32, threshold: u64| {
        let mut cfg = SimConfig::small(1);
        cfg.deadlock_threshold = threshold;
        let t = Trace::new(vec![Op::Compute(bubble), Op::read(addr(0))]);
        Machine::new(cfg, vec![t]).run()
    };
    let ok = run(900, 1_000);
    assert!(!ok.deadlocked);
    assert_eq!(ok.reads[0], vec![0]);
    let flagged = run(1_200, 1_000);
    assert!(
        flagged.deadlocked,
        "a quiet period past the threshold trips the watchdog by design"
    );
}
