//! Engine-equivalence suite: the event-driven cycle-skipping engine and
//! the adaptive hybrid engine must be **observational no-ops** relative to
//! the lockstep reference — only faster.
//!
//! Every shape is run under all three [`StepMode`]s and the full
//! `SimResult` is compared **cycle-exactly**: aggregate and per-core
//! `SimStats` (including `cycles`, stall and retry counters), read values,
//! final memory, interconnect traffic, and the deadlock flag. Coverage:
//!
//! * the hand-written classic + paper litmus corpus × all three RMW
//!   atomicities (lock contention, broadcasts, reverted drains);
//! * the §4 workload kernels (spinlock suite, TL2-style STM, Chase–Lev
//!   work stealing) on paper-latency configurations, including a
//!   32-core Table 2 machine and a scaled 128-core machine;
//! * the Fig. 10 write-deadlock (watchdog equivalence in event time);
//! * adversarial density traces that force hybrid mode switches right at
//!   the `last_progress + threshold + 1` watchdog edge and the
//!   `max_cycles` truncation boundary;
//! * random traces (proptest) over all atomicities;
//! * scheduler-level properties: time never moves backwards, never skips
//!   past an armed wakeup, and drains the same-cycle due set in the same
//!   order whether the arms landed in a wheel bucket or in the overflow
//!   heap.

use proptest::prelude::*;
use rmw_types::{Addr, Atomicity, RmwKind};
use tso_sim::{
    lower_with_line_size, Machine, Op, Scheduler, SimConfig, SimResult, Src, StepMode, Trace,
};

/// Runs the same configuration + traces under all three engines and
/// asserts cycle-identical results; returns the event-driven result.
fn assert_engines_agree(mut cfg: SimConfig, traces: Vec<Trace>, label: &str) -> SimResult {
    cfg.step_mode = StepMode::Lockstep;
    let ls = Machine::new(cfg, traces.clone()).run();
    let mut ev = None;
    for mode in [StepMode::EventDriven, StepMode::Hybrid] {
        cfg.step_mode = mode;
        let r = Machine::new(cfg, traces.clone()).run();
        assert_eq!(r.stats, ls.stats, "{label}/{mode:?}: aggregate stats");
        assert_eq!(r.per_core, ls.per_core, "{label}/{mode:?}: per-core stats");
        assert_eq!(r.reads, ls.reads, "{label}/{mode:?}: read values");
        assert_eq!(r.memory, ls.memory, "{label}/{mode:?}: final memory");
        assert_eq!(r.net, ls.net, "{label}/{mode:?}: interconnect traffic");
        assert_eq!(r.deadlocked, ls.deadlocked, "{label}/{mode:?}: deadlock");
        assert_eq!(r.truncated, ls.truncated, "{label}/{mode:?}: truncation");
        if mode == StepMode::EventDriven {
            ev = Some(r);
        }
    }
    ev.expect("event-driven run always executes")
}

#[test]
fn litmus_corpus_is_engine_equivalent() {
    let mut tests = litmus::classic::all();
    tests.extend(litmus::paper::all());
    assert!(tests.len() >= 20, "corpus unexpectedly small");
    for l in &tests {
        for atomicity in Atomicity::ALL {
            let prog = l.program.with_atomicity(atomicity);
            let mut cfg = SimConfig::small(prog.num_threads().max(1));
            cfg.rmw_atomicity = atomicity;
            let traces = lower_with_line_size(&prog, cfg.line_size);
            assert_engines_agree(cfg, traces, &format!("{} / {atomicity}", l.name));
        }
    }
}

/// A paper-latency configuration scaled to `cores` with the chosen RMW
/// atomicity (see [`SimConfig::paper_scaled`]).
fn paper_scale(cores: usize, atomicity: Atomicity) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(cores);
    cfg.rmw_atomicity = atomicity;
    cfg
}

#[test]
fn workload_kernels_are_engine_equivalent() {
    // One kernel per idiom: spinlock (lock suite), TL2 (STM), Chase–Lev
    // (work stealing, both C/C++11 replacement variants).
    let kernels = [
        workloads::Benchmark::Radiosity,
        workloads::Benchmark::Bayes,
        workloads::Benchmark::WsqMstWr,
        workloads::Benchmark::WsqMstRr,
    ];
    for bench in kernels {
        for atomicity in Atomicity::ALL {
            let traces = workloads::benchmark(bench, 4, 800, 0xD15EA5E);
            let cfg = paper_scale(4, atomicity);
            let r = assert_engines_agree(cfg, traces, &format!("{bench} / {atomicity}"));
            assert!(r.stats.rmw_count > 0, "{bench}: kernel exercised no RMWs");
        }
    }
}

#[test]
fn paper_table2_machine_is_engine_equivalent() {
    // The full 32-core Table 2 machine — the configuration the
    // cycle-skipping engine exists for.
    let traces = workloads::benchmark(workloads::Benchmark::Raytrace, 32, 300, 7);
    let cfg = paper_scale(32, Atomicity::Type2);
    let r = assert_engines_agree(cfg, traces, "raytrace 32-core table2");
    assert!(!r.deadlocked);
    assert!(r.stats.rmw_count > 0);
}

#[test]
fn scaled_128_core_machine_is_engine_equivalent() {
    // The 128-core scaled machine (`--machine 128`): Table 2 latencies on
    // a 12×11 mesh with router-only nodes past the core count. All three
    // engines must agree on a workload that actually spreads over the
    // wide machine.
    let traces = workloads::benchmark(workloads::Benchmark::Genome, 128, 60, 11);
    let cfg = paper_scale(128, Atomicity::Type3);
    let r = assert_engines_agree(cfg, traces, "vacation 128-core scaled");
    assert!(!r.deadlocked);
    assert!(r.stats.rmw_count > 0);
}

#[test]
fn hybrid_switches_at_the_watchdog_edge_are_cycle_exact() {
    // Adversarial density: a dense spin phase long enough to push the
    // hybrid engine into dense mode, then a quiescent wedge. The watchdog
    // must fire at exactly `last_progress + threshold + 1` no matter
    // which mode the engine is in when the window turns sparse — sweep
    // the threshold so the edge lands at different offsets inside the
    // hybrid policy window.
    for threshold in [900, 1_000, 1_063, 1_089] {
        let mut cfg = SimConfig::small(2);
        cfg.deadlock_threshold = threshold;
        let spin = |n| {
            let mut ops = Vec::new();
            for _ in 0..n {
                ops.push(Op::read(Addr(0)));
            }
            // Park on a flag nobody ever sets: a genuine wedge.
            ops.push(Op::FutexWait(Addr(64), Src::Imm(0)));
            Trace::new(ops)
        };
        let r = assert_engines_agree(
            cfg,
            vec![spin(400), spin(300)],
            &format!("watchdog edge / threshold {threshold}"),
        );
        assert!(r.deadlocked, "orphaned sleepers must wedge");
    }
}

#[test]
fn hybrid_truncation_at_the_cycle_ceiling_is_cycle_exact() {
    // `max_cycles` lands inside (and right at the edge of) the watchdog
    // interval of a wedged dense phase: `stop = fire.min(max_cycles)`
    // must resolve identically in every engine, flipping between
    // truncated and deadlocked as the ceiling crosses the fire cycle.
    for max_cycles in [500, 1_000, 1_490, 1_505, 2_000] {
        let mut cfg = SimConfig::small(2);
        cfg.deadlock_threshold = 700;
        cfg.max_cycles = max_cycles;
        let spin = |n| {
            let mut ops = Vec::new();
            for _ in 0..n {
                ops.push(Op::read(Addr(0)));
            }
            ops.push(Op::FutexWait(Addr(64), Src::Imm(0)));
            Trace::new(ops)
        };
        let r = assert_engines_agree(
            cfg,
            vec![spin(200), spin(150)],
            &format!("truncation edge / max {max_cycles}"),
        );
        assert!(
            r.deadlocked || r.truncated,
            "wedge must end in watchdog or ceiling"
        );
    }
}

#[test]
fn fig10_deadlock_is_engine_equivalent() {
    // The watchdog is redefined in event time; the wedge must be detected
    // at exactly the lockstep cycle, with identical partial statistics.
    let mut cfg = SimConfig::small(2);
    cfg.rmw_atomicity = Atomicity::Type2;
    cfg.bloom_enabled = false;
    cfg.deadlock_threshold = 7_500;
    let t0 = Trace::new(vec![Op::write(Addr(0), 1), Op::rmw(Addr(64))]);
    let t1 = Trace::new(vec![Op::write(Addr(64), 1), Op::rmw(Addr(0))]);
    let r = assert_engines_agree(cfg, vec![t0, t1], "fig10 unsafe");
    assert!(r.deadlocked, "unsafe Fig. 10 shape must wedge");
}

#[test]
fn zero_latency_config_terminates_and_is_engine_equivalent() {
    // Degenerate all-zero latencies make coherence transactions complete
    // in the cycle they issue; every event arm must still land strictly
    // in the future (the `.max(now + 1)` clamps), or the event engine
    // would never advance time.
    let mut cfg = SimConfig::small(2);
    cfg.coherence.l1_latency = 0;
    cfg.coherence.l2_latency = 0;
    cfg.coherence.memory_latency = 0;
    cfg.coherence.mesh.link_latency = 0;
    cfg.coherence.mesh.router_latency = 0;
    cfg.rmw_atomicity = Atomicity::Type2;
    let t0 = Trace::new(vec![
        Op::write(Addr(0), 1),
        Op::rmw(Addr(64)),
        Op::read(Addr(128)),
    ]);
    let t1 = Trace::new(vec![Op::rmw(Addr(64)), Op::write(Addr(128), 2)]);
    let r = assert_engines_agree(cfg, vec![t0, t1], "zero-latency config");
    assert!(!r.deadlocked);
    assert_eq!(r.stats.rmw_count, 2);
}

#[test]
fn quiescent_compute_watchdog_is_engine_equivalent() {
    // A compute bubble longer than the threshold trips the watchdog at
    // `last_progress + threshold + 1` under both engines, even though the
    // event engine sees the wedge instantly.
    let mut cfg = SimConfig::small(1);
    cfg.deadlock_threshold = 1_000;
    let t = Trace::new(vec![Op::Compute(1_200), Op::read(Addr(0))]);
    let r = assert_engines_agree(cfg, vec![t], "long compute bubble");
    assert!(r.deadlocked);
    assert_eq!(r.stats.cycles, 1_001);
}

/// One zoo kernel under both engines on the small machine — the futex /
/// branch / register paths exercised by a real lock algorithm (the full
/// matrix lives in `workloads/tests/zoo_invariants.rs`; this anchors the
/// contract from the sim crate's side).
#[test]
fn zoo_futex_kernel_is_engine_equivalent() {
    for atomicity in Atomicity::ALL {
        let mut cfg = SimConfig::small(4);
        cfg.rmw_atomicity = atomicity;
        let traces = workloads::zoo::ZooKernel::FutexMutex3.traces(4, 4);
        let r = assert_engines_agree(cfg, traces, &format!("futex_mutex3 / {atomicity}"));
        assert!(!r.deadlocked);
        assert_eq!(r.stats.futex_waits, r.stats.futex_wakeups);
    }
}

fn arb_op(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..lines).prop_map(|l| Op::Read(Addr(l * 64))),
        3 => ((0..lines), (1u64..50)).prop_map(|(l, v)| Op::Write(Addr(l * 64), v)),
        2 => (0..lines).prop_map(|l| Op::Rmw(Addr(l * 64), RmwKind::FetchAndAdd(1))),
        1 => Just(Op::Fence),
        1 => (1u32..30).prop_map(Op::Compute),
    ]
}

fn arb_traces(cores: usize, lines: u64, max_len: usize) -> impl Strategy<Value = Vec<Trace>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_op(lines), 1..max_len).prop_map(Trace::new),
        cores..=cores,
    )
}

/// Random op mix that also exercises the futex primitive. Expected values
/// are drawn from the same small range as stores, so waits split between
/// genuine sleeps and EAGAIN returns; unmatched waits are caught by the
/// watchdog or the cycle ceiling — identically in both engines.
fn arb_futex_op(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..lines).prop_map(|l| Op::Read(Addr(l * 64))),
        3 => ((0..lines), (0u64..3)).prop_map(|(l, v)| Op::Write(Addr(l * 64), v)),
        2 => (0..lines).prop_map(|l| Op::Rmw(Addr(l * 64), RmwKind::FetchAndAdd(1))),
        2 => ((0..lines), (0u64..3)).prop_map(|(l, v)| Op::FutexWait(Addr(l * 64), Src::Imm(v))),
        2 => ((0..lines), (1u32..4)).prop_map(|(l, n)| Op::FutexWake(Addr(l * 64), n)),
        1 => (1u32..30).prop_map(Op::Compute),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random trace mixes agree between the engines under every atomicity
    /// — including tight write-buffer configurations that exercise the
    /// stall-episode accounting.
    #[test]
    fn random_traces_are_engine_equivalent(
        traces in arb_traces(3, 4, 16),
        wb in 1usize..6,
    ) {
        for atomicity in Atomicity::ALL {
            let mut cfg = SimConfig::small(3);
            cfg.rmw_atomicity = atomicity;
            cfg.write_buffer_entries = wb;
            assert_engines_agree(cfg, traces.clone(), &format!("random / {atomicity} / wb={wb}"));
        }
    }

    /// Futex liveness: however the arrival times fall, a publishing waker
    /// (store flag, wake all) never loses a waiter — every sleep is paired
    /// with a wakeup, and every waiter (slept or EAGAIN'd) observes the
    /// payload published *before* the flag store, under every atomicity
    /// and in both engines.
    #[test]
    fn futex_wakeups_are_never_lost(
        delays in proptest::collection::vec(1u32..400, 1..5),
        wake_delay in 1u32..400,
    ) {
        let flag = Addr(0);
        let data = Addr(64);
        let waiters = delays.len();
        let mut traces: Vec<Trace> = delays
            .iter()
            .map(|&d| {
                Trace::new(vec![
                    Op::Compute(d),
                    Op::FutexWait(flag, Src::Imm(0)),
                    Op::read(data),
                ])
            })
            .collect();
        traces.push(Trace::new(vec![
            Op::Compute(wake_delay),
            Op::write(data, 42),
            Op::write(flag, 1),
            Op::FutexWake(flag, u32::MAX),
        ]));
        for atomicity in Atomicity::ALL {
            let mut cfg = SimConfig::small(waiters + 1);
            cfg.rmw_atomicity = atomicity;
            let r = assert_engines_agree(
                cfg,
                traces.clone(),
                &format!("no-lost-wakeup / {atomicity}"),
            );
            prop_assert!(!r.deadlocked, "a waiter slept through the wakeup");
            prop_assert_eq!(r.stats.futex_wakeups, r.stats.futex_waits);
            prop_assert_eq!(
                r.stats.futex_waits + r.stats.futex_immediate,
                waiters as u64
            );
            for w in 0..waiters {
                // The wake drains the waker's buffer first, so by TSO FIFO
                // order the payload is visible to every released waiter.
                prop_assert_eq!(&r.reads[w], &vec![42u64], "waiter {} payload", w);
            }
        }
    }

    /// A wait whose expected-value check fails returns EAGAIN and must
    /// never be put to sleep or woken; a wake on an empty queue releases
    /// nobody.
    #[test]
    fn failed_expected_check_is_never_woken(
        delays in proptest::collection::vec(1u32..200, 1..4),
        expected in 2u64..9,
    ) {
        let flag = Addr(0);
        let waiters = delays.len();
        // The flag only ever holds 0 or 1, never `expected`.
        let mut traces: Vec<Trace> = delays
            .iter()
            .map(|&d| {
                Trace::new(vec![
                    Op::Compute(d),
                    Op::FutexWait(flag, Src::Imm(expected)),
                    Op::FutexWait(flag, Src::Imm(expected)),
                ])
            })
            .collect();
        traces.push(Trace::new(vec![
            Op::write(flag, 1),
            Op::FutexWake(flag, u32::MAX),
        ]));
        let cfg = SimConfig::small(waiters + 1);
        let r = assert_engines_agree(cfg, traces, "failed-expected");
        prop_assert!(!r.deadlocked);
        prop_assert_eq!(r.stats.futex_waits, 0, "a failed check went to sleep");
        prop_assert_eq!(r.stats.futex_wakeups, 0, "a non-sleeper was woken");
        prop_assert_eq!(r.stats.futex_immediate, 2 * waiters as u64);
        prop_assert_eq!(r.stats.futex_wakes, 0, "empty-queue wake dequeued someone");
    }

    /// Random programs over the *full* op set — futexes included — agree
    /// between the engines under a hard cycle ceiling. Orphaned sleepers
    /// end in watchdog deadlock or truncation; both flags and all partial
    /// statistics must match exactly.
    #[test]
    fn random_futex_traces_are_engine_equivalent(
        traces in proptest::collection::vec(
            proptest::collection::vec(arb_futex_op(3), 1..12).prop_map(Trace::new),
            3..=3,
        ),
    ) {
        for atomicity in Atomicity::ALL {
            let mut cfg = SimConfig::small(3);
            cfg.rmw_atomicity = atomicity;
            cfg.deadlock_threshold = 4_000;
            cfg.max_cycles = 20_000;
            assert_engines_agree(cfg, traces.clone(), &format!("random-futex / {atomicity}"));
        }
    }

    /// Scheduler property: `next_after` is strictly monotone (time never
    /// moves backwards) and never skips past an armed wakeup — every armed
    /// cycle in the future is visited, in order, with its due cores
    /// reported exactly once in ascending id order.
    #[test]
    fn scheduler_never_regresses_nor_skips(
        arms in proptest::collection::vec((1u64..2_000, 0usize..7), 1..60),
    ) {
        let mut sched = Scheduler::new(true);
        for (i, &(at, core)) in arms.iter().enumerate() {
            let kind = tso_sim::EventKind::ALL[i % tso_sim::EventKind::ALL.len()];
            sched.wake_core(0, at, core, kind);
        }
        let mut expected: Vec<u64> = arms.iter().map(|&(at, _)| at).collect();
        expected.sort_unstable();
        expected.dedup();
        let mut now = 0u64;
        let mut visited = Vec::new();
        let mut due = Vec::new();
        while let Some(next) = sched.next_after(now) {
            prop_assert!(next > now, "time moved backwards: {now} -> {next}");
            visited.push(next);
            now = next;
            due.clear();
            let _ = sched.drain_due(now, &mut due);
            let mut want: Vec<usize> = arms
                .iter()
                .filter(|&&(at, _)| at == now)
                .map(|&(_, core)| core)
                .collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(&due, &want, "due set wrong at {}", now);
        }
        prop_assert_eq!(visited, expected, "armed wakeups skipped or invented");
        prop_assert_eq!(sched.pending(), 0);
    }

    /// Arms landing at the same cycle drain in the same ascending-id tick
    /// order whether they sit in a wheel bucket (armed near the target) or
    /// spilled to the overflow heap (armed from beyond the wheel horizon)
    /// — the batched bitmap drain makes the order canonical by
    /// construction, so the machine's tick order cannot depend on how far
    /// in advance an event was armed.
    #[test]
    fn wheel_and_overflow_drains_are_order_identical(
        cores in proptest::collection::vec(0usize..200, 1..40),
        at in 600u64..5_000,
    ) {
        let mut wheel = Scheduler::new(true);
        let mut overflow = Scheduler::new(true);
        for (i, &core) in cores.iter().enumerate() {
            let kind = tso_sim::EventKind::ALL[i % tso_sim::EventKind::ALL.len()];
            // Armed one cycle out: lands in a wheel bucket.
            wheel.wake_core(at - 1, at, core, kind);
            // Armed from cycle 0: beyond the horizon, lands in the
            // overflow heap.
            overflow.wake_core(0, at, core, kind);
        }
        prop_assert_eq!(wheel.next_after(at - 1), Some(at));
        prop_assert_eq!(overflow.next_after(0), Some(at));
        let (mut wd, mut od) = (Vec::new(), Vec::new());
        let wf = wheel.drain_due(at, &mut wd);
        let of = overflow.drain_due(at, &mut od);
        let mut want = cores.clone();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(&wd, &want, "wheel drain order not ascending ids");
        prop_assert_eq!(wd, od, "tick order depends on arm distance");
        prop_assert_eq!(wf, of, "due flags depend on arm distance");
        prop_assert_eq!(wheel.pending(), 0);
        prop_assert_eq!(overflow.pending(), 0);
    }

    /// Late arms interleaved with visits (the machine's actual usage
    /// pattern) still never pull time backwards or past a pending arm —
    /// including arms beyond the wheel horizon.
    #[test]
    fn scheduler_interleaved_arms_stay_monotone(
        steps in proptest::collection::vec((1u64..2_000, any::<bool>()), 1..80),
    ) {
        let mut sched = Scheduler::new(true);
        let mut now = 0u64;
        let mut pending: Vec<u64> = Vec::new();
        let mut due = Vec::new();
        for (delta, advance) in steps {
            if advance {
                let next = sched.next_after(now);
                pending.sort_unstable();
                pending.dedup();
                prop_assert_eq!(next, pending.first().copied(), "wrong next wakeup");
                if let Some(t) = next {
                    prop_assert!(t > now);
                    now = t;
                    due.clear();
                    let _ = sched.drain_due(now, &mut due);
                    pending.retain(|&p| p > now);
                }
            } else {
                let at = now + delta;
                sched.wake_core(now, at, 0, tso_sim::EventKind::Advance);
                pending.push(at);
            }
        }
    }
}
