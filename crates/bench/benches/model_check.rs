//! Criterion bench of the semantic engines: litmus checking (Table 1 /
//! Figures 3–8) and C/C++11 mapping verification (Table 4 / Appendix A).

use cc11::{verify::corpus, verify_mapping, Mapping};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmw_types::Atomicity;
use std::time::Duration;

fn bench_litmus(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_litmus");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("classic_corpus", |b| {
        b.iter(|| {
            let failures = litmus::run_all(&litmus::classic::all());
            assert!(failures.is_empty());
        })
    });
    group.bench_function("paper_corpus", |b| {
        b.iter(|| {
            let failures = litmus::run_all(&litmus::paper::all());
            assert!(failures.is_empty());
        })
    });
    group.bench_function("table1_matrix", |b| {
        b.iter(|| {
            let rows = litmus::table1();
            assert_eq!(rows.len(), 3);
        })
    });
    group.finish();
}

fn bench_cc11(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_cc11");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for mapping in Mapping::ALL {
        for atomicity in Atomicity::ALL {
            group.bench_with_input(
                BenchmarkId::new(mapping.to_string(), atomicity),
                &(mapping, atomicity),
                |b, &(m, a)| {
                    b.iter(|| {
                        for (_, prog) in corpus() {
                            let r = verify_mapping(&prog, m, a);
                            // A sound mapping passes every program; an
                            // unsound one may still pass some.
                            if m.sound_for(a) {
                                assert!(r.is_ok());
                            }
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_litmus, bench_cc11);
criterion_main!(benches);
