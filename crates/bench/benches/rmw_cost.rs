//! Criterion bench over the Fig. 11 experiment kernel: simulating each
//! benchmark under each RMW type. Reports simulated-RMW-cost figures via
//! `eprintln` once per configuration, and wall-clock throughput of the
//! simulator as the measured quantity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmw_types::Atomicity;
use std::time::Duration;
use tso_sim::Machine;
use workloads::Benchmark;

const CORES: usize = 4;
const MEMOPS: usize = 4_000;

fn bench_rmw_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_rmw_cost");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for bench in [Benchmark::Radiosity, Benchmark::Bayes, Benchmark::WsqMstRr] {
        for atomicity in Atomicity::ALL {
            // Report the simulated metric once, outside the timed loop.
            let cfg = bench::config_for(CORES, atomicity);
            let traces = workloads::benchmark(bench, CORES, MEMOPS, bench::SEED);
            let r = Machine::new(cfg, traces).run();
            eprintln!(
                "[fig11a] {bench} {atomicity}: avg RMW cost {:.1} cycles (WB {:.1} + RaWa {:.1}); overhead {:.2}%",
                r.stats.avg_rmw_cost(),
                r.stats.rmw_cost.write_buffer_cycles as f64 / r.stats.rmw_count.max(1) as f64,
                r.stats.rmw_cost.ra_wa_cycles as f64 / r.stats.rmw_count.max(1) as f64,
                100.0 * r.stats.rmw_overhead_fraction(),
            );
            group.bench_with_input(
                BenchmarkId::new(bench.name(), atomicity),
                &atomicity,
                |b, &a| {
                    b.iter(|| {
                        let cfg = bench::config_for(CORES, a);
                        let traces = workloads::benchmark(bench, CORES, MEMOPS, bench::SEED);
                        Machine::new(cfg, traces).run().stats.cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rmw_cost);
criterion_main!(benches);
