//! Criterion micro-benches of the substrates: Bloom filter operations
//! (§3.2 hardware cost sanity) and mesh latency computation.

use bloom::BloomFilter;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use interconnect::{Mesh, MeshConfig};
use std::time::Duration;

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_filter");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("insert_paper_config", |b| {
        let mut f = BloomFilter::paper_config();
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
            f.insert(black_box(k))
        })
    });
    group.bench_function("query_hit", |b| {
        let mut f = BloomFilter::paper_config();
        for k in 0..64u64 {
            f.insert(k);
        }
        b.iter(|| f.maybe_contains(black_box(13)))
    });
    group.bench_function("query_miss", |b| {
        let mut f = BloomFilter::paper_config();
        for k in 0..64u64 {
            f.insert(k);
        }
        b.iter(|| f.maybe_contains(black_box(0xDEAD_BEEF)))
    });
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mesh = Mesh::new(MeshConfig::paper_32());
    let mut group = c.benchmark_group("mesh");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("pairwise_latency", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for a in 0..32 {
                for z in 0..32 {
                    acc += mesh.latency(black_box(a), black_box(z));
                }
            }
            acc
        })
    });
    group.bench_function("broadcast_ack_latency", |b| {
        b.iter(|| mesh.broadcast_ack_latency(black_box(0)))
    });
    group.finish();
}

criterion_group!(benches, bench_bloom, bench_mesh);
criterion_main!(benches);
