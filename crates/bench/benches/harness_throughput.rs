//! Criterion bench of the differential harness: single-test check cost on
//! representative shapes, and batch throughput at 1 vs. N workers on a
//! fixed corpus slice. `harness_scaling` (the experiment binary) records
//! the jobs sweep into `BENCH_harness.json`; this bench is the
//! regression-catching view (`cargo bench --bench harness_throughput`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{differential_check, run_batch};
use litmus::{classic, gen, paper, Litmus};
use std::time::Duration;

fn bench_single_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_check");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(100));
    group.sample_size(10);
    let shapes: Vec<Litmus> = vec![
        classic::sb(),
        classic::iriw(),
        paper::dekker_write_replacement(rmw_types::Atomicity::Type2),
        gen::two_two_w_ring(5),
    ];
    for l in &shapes {
        group.bench_with_input(BenchmarkId::new("check", &l.name), l, |b, l| {
            b.iter(|| {
                let o = differential_check(l);
                assert!(o.passed(), "{}", o.diagnosis());
            })
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_batch");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(10);
    // A fixed 48-test slice: hand-written plus the first generated tests.
    let mut tests: Vec<Litmus> = classic::all();
    tests.extend(paper::all());
    tests.extend(gen::generated_corpus(gen::DEFAULT_SEED, 0));
    tests.truncate(48);
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let (outcomes, _) = run_batch(&tests, jobs);
                assert!(outcomes.iter().all(harness::TestOutcome::passed));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_checks, bench_batch);
criterion_main!(benches);
