//! Criterion bench of the model-search engines: the streaming pruned
//! search (`tso_model::search`) against the legacy materializing
//! enumeration, on the shared `dekker_variant` scaling shapes and the
//! litmus corpora. `model_scaling` (the experiment binary) records the
//! same comparison into `BENCH_model.json`; this bench is the
//! regression-catching view (`cargo bench --bench model_search`).

use bench::model_shapes::dekker_variant;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use std::time::Duration;
use tso_model::{
    check_validity, enumerate_candidates, for_each_valid_execution, outcome_allowed, Program,
};

/// Counts valid executions through the streaming engine.
fn streaming_count(p: &Program) -> u64 {
    for_each_valid_execution(p, |_| ControlFlow::Continue(())).valid
}

/// Counts valid executions by materializing and filtering (legacy).
fn legacy_count(p: &Program) -> usize {
    enumerate_candidates(p)
        .iter()
        .filter(|c| check_validity(c).is_valid())
        .count()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_search");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(10);
    // Shared shapes: small enough for the legacy enumerator, large enough
    // that pruning matters (see model_scaling / BENCH_model.json).
    for (n, r) in [(2usize, 2usize), (3, 2), (2, 3)] {
        let p = dekker_variant(n, r);
        group.bench_with_input(
            BenchmarkId::new("streaming", format!("n{n}r{r}")),
            &p,
            |b, p| b.iter(|| streaming_count(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("legacy", format!("n{n}r{r}")),
            &p,
            |b, p| b.iter(|| legacy_count(p)),
        );
    }
    // Streaming-only: the legacy enumerator cannot hold this shape.
    let big = dekker_variant(3, 3);
    group.bench_function("streaming/n3r3", |b| b.iter(|| streaming_count(&big)));
    group.finish();
}

fn bench_early_exit(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_search_early_exit");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(100));
    group.sample_size(10);
    // Allowed outcome: the search stops at the first witness.
    let p = dekker_variant(2, 3);
    group.bench_function("allowed_witness", |b| {
        b.iter(|| {
            assert!(outcome_allowed(&p, |rv| rv.iter().all(|&v| v == 0)));
        })
    });
    // Forbidden outcome: the search must exhaust the (pruned) space.
    group.bench_function("forbidden_exhaust", |b| {
        b.iter(|| {
            assert!(!outcome_allowed(&p, |rv| rv.iter().all(|&v| v == 9)));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_early_exit);
criterion_main!(benches);
