//! Experiment harness: shared runners behind the table/figure binaries.
//!
//! Every binary prints the same rows/series as the corresponding paper
//! artefact (see `DESIGN.md` for the index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison):
//!
//! | binary          | paper artefact |
//! |-----------------|----------------|
//! | `table3`        | Table 3 (benchmark characteristics) |
//! | `fig11a`        | Fig. 11(a) (RMW cost split, type-1/2/3) |
//! | `fig11b`        | Fig. 11(b) (RMW share of execution time) |
//! | `intro_latency` | §1's 67-cycle / mfence hypothesis check |
//! | `bloom_ablation`| §3.2 design choice: filter size / hash count |
//! | `dirlock_ablation` | §3.3 design choice: directory locking |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rmw_types::Atomicity;
use tso_sim::{Machine, SimConfig, SimResult};
use workloads::Benchmark;

/// Default core count for experiment binaries (paper: 32; override with the
/// first CLI argument — smaller is faster for a smoke run).
pub const DEFAULT_CORES: usize = 8;
/// Default memory operations per core.
pub const DEFAULT_MEMOPS: usize = 20_000;
/// Seed used by all experiments (results are deterministic).
pub const SEED: u64 = 0xD15EA5E;

/// Parses `[cores] [memops]` from the command line with defaults.
pub fn cli_scale() -> (usize, usize) {
    let mut args = std::env::args().skip(1);
    let cores = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_CORES);
    let memops = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_MEMOPS);
    (cores, memops)
}

/// A simulator configuration scaled from Table 2 to `cores` cores
/// (the mesh resizes accordingly; all latencies stay at paper values).
/// Thin wrapper over [`SimConfig::paper_scaled`] that also sets the RMW
/// atomicity.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn config_for(cores: usize, atomicity: Atomicity) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(cores);
    cfg.rmw_atomicity = atomicity;
    cfg
}

/// Runs one benchmark under one RMW implementation.
pub fn run(bench: Benchmark, atomicity: Atomicity, cores: usize, memops: usize) -> SimResult {
    let cfg = config_for(cores, atomicity);
    let traces = workloads::benchmark(bench, cores, memops, SEED);
    let result = Machine::new(cfg, traces).run();
    assert!(
        !result.deadlocked,
        "{bench} deadlocked under {atomicity} — the avoidance scheme failed"
    );
    result
}

/// Per-benchmark, per-type results for the Fig. 11 experiments.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// Results for type-1, type-2, type-3 (in that order).
    pub by_type: [SimResult; 3],
}

/// Runs all benchmarks under all three RMW types.
pub fn fig11_sweep(cores: usize, memops: usize) -> Vec<Fig11Row> {
    Benchmark::ALL
        .iter()
        .map(|&bench| Fig11Row {
            bench,
            by_type: [
                run(bench, Atomicity::Type1, cores, memops),
                run(bench, Atomicity::Type2, cores, memops),
                run(bench, Atomicity::Type3, cores, memops),
            ],
        })
        .collect()
}

/// Formats a float with fixed width for the table printers.
pub fn f(v: f64) -> String {
    format!("{v:8.2}")
}

/// Model-search scaling shapes shared by the `model_search` criterion bench
/// and the `model_scaling` experiment binary (`BENCH_model.json`).
pub mod model_shapes {
    use rmw_types::{Addr, Atomicity, RmwKind};
    use tso_model::{Program, ProgramBuilder};

    /// An `n`-thread, `rounds`-round Dekker variant: thread `i` alternates
    /// `W(x_i, k); R(x_{i+1 mod n})` for `k = 1..=rounds`.
    ///
    /// One round of two threads is the classic store-buffering (SB) core of
    /// Dekker's algorithm; more rounds multiply both the writes per
    /// location (`ws` permutations: `rounds!` per location) and the reads
    /// (`rf` choices: `(rounds+1)` per read), so the *candidate* space the
    /// legacy enumerator materializes grows as
    /// `(rounds+1)^(n·rounds) · (rounds!)^n` while the valid executions —
    /// per-thread coherent read sequences — stay rare. This is the shape
    /// family the streaming engine's pruning is measured on.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1` or `rounds < 1`.
    pub fn dekker_variant(n: usize, rounds: usize) -> Program {
        assert!(n >= 1 && rounds >= 1, "need at least 1 thread and 1 round");
        let mut b = ProgramBuilder::new();
        for i in 0..n {
            let mine = Addr(i as u64);
            let other = Addr(((i + 1) % n) as u64);
            let mut t = b.thread();
            for k in 1..=rounds {
                t.write(mine, k as u64).read(other);
            }
        }
        b.build()
    }

    /// Number of candidate executions the legacy enumerator would
    /// materialize for [`dekker_variant`]`(n, rounds)` (before dropping
    /// circular values — an upper bound that is exact for this family,
    /// which has no RMWs).
    pub fn dekker_variant_candidates(n: usize, rounds: usize) -> f64 {
        let rf: f64 = ((rounds + 1) as f64).powi((n * rounds) as i32);
        let fact: f64 = (1..=rounds).product::<usize>() as f64;
        rf * fact.powi(n as i32)
    }

    /// The RMW Dekker family: [`dekker_variant`] with every write replaced
    /// by a fetch-and-add under the given `atomicity` — thread `i`
    /// alternates `RMW(x_i, +=k); R(x_{i+1 mod n})`.
    ///
    /// The three atomicity rewrites of one `(n, rounds)` shape share their
    /// atomicity-masked canonical key, so they are the measurement family
    /// for **prefix-certificate sharing** (`tso_model::prefix`): the first
    /// rewrite pays the pruned search, the siblings replay its recorded
    /// leaves and re-solve only the leaf-level atomicity disjunctions.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1` or `rounds < 1`.
    pub fn dekker_rmw(n: usize, rounds: usize, atomicity: Atomicity) -> Program {
        assert!(n >= 1 && rounds >= 1, "need at least 1 thread and 1 round");
        let mut b = ProgramBuilder::new();
        for i in 0..n {
            let mine = Addr(i as u64);
            let other = Addr(((i + 1) % n) as u64);
            let mut t = b.thread();
            for k in 1..=rounds {
                t.rmw(mine, RmwKind::FetchAndAdd(k as u64), atomicity)
                    .read(other);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_scaling_keeps_paper_latencies() {
        let c = config_for(8, Atomicity::Type2);
        assert_eq!(c.num_cores(), 8);
        assert_eq!(c.coherence.l1_latency, 2);
        assert_eq!(c.coherence.memory_latency, 300);
        assert!(c.mesh().num_nodes() >= 8);
        assert!(c.validate().is_ok());
        let full = config_for(32, Atomicity::Type1);
        assert_eq!(full.mesh().num_nodes(), 32);
    }

    #[test]
    fn smoke_run_radiosity() {
        let r = run(Benchmark::Radiosity, Atomicity::Type2, 2, 1_000);
        assert!(r.stats.rmw_count > 0);
        assert!(r.stats.cycles > 0);
    }
}
