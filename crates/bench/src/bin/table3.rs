//! Regenerates **Table 3**: benchmark characteristics.
//!
//! Columns: RMWs per 1000 memops, % unique RMW addresses, % write-buffer
//! drains for type-2/type-3 RMWs (Bloom hits), and RMW broadcasts per 100
//! RMW ops. The first two are properties of the workload generator (matched
//! to the paper's measurements); the last two are *measured* on the
//! simulator with type-2 RMWs, as in the paper.

use bench::{cli_scale, run};
use rmw_types::Atomicity;
use workloads::Benchmark;

fn main() {
    let (cores, memops) = cli_scale();
    println!("Table 3: Benchmark Characteristics ({cores} cores, {memops} memops/core)");
    println!(
        "{:<14} {:>16} {:>10} {:>22} {:>20}",
        "Code", "RMWs/1000 memops", "% Unique", "% WB drains (t2/t3)", "Broadcasts/100 RMWs"
    );
    for bench in Benchmark::ALL {
        let r = run(bench, Atomicity::Type2, cores, memops);
        let s = &r.stats;
        println!(
            "{:<14} {:>16.2} {:>10.2} {:>22.2} {:>20.2}",
            bench.name(),
            s.rmw_density_per_1000(),
            s.pct_unique_rmws(),
            s.pct_drains(),
            s.broadcasts_per_100(),
        );
    }
    println!();
    println!("Paper (32 cores, full inputs):");
    println!("  radiosity 15.56/0.28/0.06/0.26   raytrace 13.83/0.02/0.12/0.02");
    println!("  fluidanimate 17.43/0.46/0.09/0.46  dedup 8.10/3.31/0.20/3.12");
    println!("  bayes 34.15/0.91/0.01/0.80  genome 6.19/0.64/0.10/0.52");
    println!("  wsq-mst 23.41/3.80/0.07/3.71");
}
