//! Regenerates **Figure 11(a)**: the cost of type-1 / type-2 / type-3 RMWs
//! per benchmark, split into the write-buffer component and the Ra/Wa
//! component.
//!
//! Paper headline: type-2 RMWs are 38.6–58.9 % cheaper than type-1, type-3
//! up to 64.3 % cheaper; the write-buffer drain contributes ~58 % of the
//! type-1 cost on average.

use bench::{cli_scale, fig11_sweep};

fn main() {
    let (cores, memops) = cli_scale();
    println!("Fig 11(a): Cost of RMWs in cycles ({cores} cores, {memops} memops/core)");
    println!(
        "{:<14} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "benchmark",
        "t1 WB",
        "t1 RaWa",
        "t1 tot",
        "t2 tot",
        "t3 tot",
        "t1 tot",
        "t2 save%",
        "t3 save%"
    );
    let mut savings2 = Vec::new();
    let mut savings3 = Vec::new();
    let mut wb_shares = Vec::new();
    for row in fig11_sweep(cores, memops) {
        let [t1, t2, t3] = &row.by_type;
        let c1 = t1.stats.avg_rmw_cost();
        let c2 = t2.stats.avg_rmw_cost();
        let c3 = t3.stats.avg_rmw_cost();
        let wb1 = t1.stats.rmw_cost.write_buffer_cycles as f64 / t1.stats.rmw_count as f64;
        let rawa1 = t1.stats.rmw_cost.ra_wa_cycles as f64 / t1.stats.rmw_count as f64;
        let save2 = 100.0 * (c1 - c2) / c1;
        let save3 = 100.0 * (c1 - c3) / c1;
        savings2.push(save2);
        savings3.push(save3);
        wb_shares.push(100.0 * wb1 / c1);
        println!(
            "{:<14} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1}% {:>8.1}%",
            row.bench.name(),
            wb1,
            rawa1,
            c1,
            c2,
            c3,
            c1,
            save2,
            save3
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "write-buffer share of type-1 cost: avg {:.1}% (paper: 58.0% avg)",
        avg(&wb_shares)
    );
    println!(
        "type-2 saving vs type-1: avg {:.1}%, max {:.1}% (paper: 38.6–58.9%)",
        avg(&savings2),
        savings2.iter().cloned().fold(f64::MIN, f64::max)
    );
    println!(
        "type-3 saving vs type-1: avg {:.1}%, max {:.1}% (paper: up to 64.3%)",
        avg(&savings3),
        savings3.iter().cloned().fold(f64::MIN, f64::max)
    );
}
