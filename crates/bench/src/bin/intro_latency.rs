//! The §1 motivation experiment: average RMW latency, with and without a
//! trailing `mfence`.
//!
//! The paper measured 67 cycles per RMW on an 8-core Sandy Bridge and found
//! that adding an mfence after each RMW "does not significantly change" the
//! latency — evidence that type-1 RMWs already pay a full write-buffer
//! drain. We reproduce the check on the simulator: the fence is nearly free
//! after a type-1 RMW but costs real time after a type-2 RMW.

use bench::{cli_scale, config_for, SEED};
use rmw_types::Atomicity;
use tso_sim::Machine;
use workloads::Benchmark;

fn main() {
    let (cores, memops) = cli_scale();
    println!("Intro experiment: RMW latency with/without trailing mfence");
    println!("({cores} cores, {memops} memops/core, radiosity-profile workload)");
    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "config", "avg RMW cost", "total cycles", "fence Δ%"
    );
    for atomicity in [Atomicity::Type1, Atomicity::Type2] {
        let mut base_cycles = 0u64;
        for fenced in [false, true] {
            let mut cfg = config_for(cores, atomicity);
            cfg.fence_after_rmw = fenced;
            let traces = workloads::benchmark(Benchmark::Radiosity, cores, memops, SEED);
            let r = Machine::new(cfg, traces).run();
            assert!(!r.deadlocked);
            let delta = if fenced {
                100.0 * (r.stats.cycles as f64 - base_cycles as f64) / base_cycles as f64
            } else {
                base_cycles = r.stats.cycles;
                0.0
            };
            println!(
                "{:<22} {:>12.1} {:>14} {:>9.1}%",
                format!("{atomicity}{}", if fenced { " + mfence" } else { "" }),
                r.stats.avg_rmw_cost(),
                r.stats.cycles,
                delta
            );
        }
    }
    println!();
    println!("paper: 67-cycle avg RMW on Sandy Bridge; mfence after RMW ≈ free,");
    println!("       supporting the forced-write-buffer-drain hypothesis for type-1.");
}
