//! Simulator engine scaling: the event-driven cycle-skipping engine and
//! the adaptive hybrid engine vs. the lockstep reference, recorded as
//! `BENCH_sim.json`.
//!
//! Two families of shapes, all on paper-latency machines:
//!
//! * **§4 workload kernels** (spinlock suite, TL2-style STM, Chase–Lev
//!   work stealing) at 32 cores — dense shapes where some core acts almost
//!   every cycle, so the bound on any cycle-skipping engine is the share
//!   of real transaction work; expect low single-digit speedups.
//! * **The litmus corpus on the full Table 2 machine** — the
//!   configuration the scheduler exists for (and what the differential
//!   harness's `--machine paper` runs): a handful of threads doing cold
//!   300-cycle misses while 26+ of the 32 cores idle. Lockstep burns 32
//!   ticks every cycle; the event engine visits a few dozen cycles per
//!   test. This is the paper-scale headline shape with the ≥10× floor.
//!
//! A third family scales the machine itself: 128- and 256-core
//! Table-2-latency configurations (`SimConfig::paper_scaled`), where
//! lockstep pays the full core count every cycle and the density-adaptive
//! engines must not.
//!
//! Every shape runs all three [`StepMode`]s over identical inputs and
//! asserts the results are **cycle-identical** (stats, reads, final
//! memory — the engine-equivalence contract of
//! `tso-sim/tests/engine_equiv.rs`) before recording the wall-clock
//! ratios.
//!
//! Usage:
//!
//! ```console
//! $ cargo run --release -p bench --bin sim_scaling [-- --smoke] [--out PATH]
//! ```

use bench::{config_for, SEED};
use rmw_types::Atomicity;
use std::fmt::Write as _;
use std::time::Instant;
use tso_sim::{lower_with_line_size, Machine, SimConfig, SimResult, StepMode, Trace};
use workloads::Benchmark;

enum Shape {
    /// One §4 kernel at `cores` × `memops` under one atomicity.
    Kernel {
        bench: Benchmark,
        cores: usize,
        memops: usize,
        atomicity: Atomicity,
    },
    /// The hand-written classic + paper litmus corpus plus the generator
    /// families, each test × all three atomicities, on the full Table 2
    /// machine.
    LitmusCorpus,
    /// The generator families scaled to 16–24 threads on the Table 2
    /// machine — the corpus shapes the ROADMAP wants the harness to grow
    /// into: long cold-miss chains where the machine sits idle for
    /// hundreds of cycles at a time while lockstep ticks all 32 cores.
    LitmusAtScale,
}

impl Shape {
    fn name(&self) -> String {
        match self {
            Shape::Kernel {
                bench,
                cores,
                memops,
                atomicity,
            } => format!("{bench} {cores}x{memops} {atomicity}"),
            Shape::LitmusCorpus => "litmus_corpus 32-core table2 x3 atomicities".to_owned(),
            Shape::LitmusAtScale => "litmus_families 16-24 threads table2".to_owned(),
        }
    }

    fn cores(&self) -> usize {
        match self {
            Shape::Kernel { cores, .. } => *cores,
            Shape::LitmusCorpus | Shape::LitmusAtScale => 32,
        }
    }

    /// The runs of this shape: `(config, traces)` pairs executed
    /// back-to-back under one clock.
    fn runs(&self) -> Vec<(SimConfig, Vec<Trace>)> {
        match self {
            Shape::Kernel {
                bench,
                cores,
                memops,
                atomicity,
            } => {
                let cfg = config_for(*cores, *atomicity);
                vec![(cfg, workloads::benchmark(*bench, *cores, *memops, SEED))]
            }
            Shape::LitmusCorpus => {
                // Classic + paper + the scaled generator families (the
                // seeded-random tail adds nothing but setup time here:
                // random shapes are as small as the classic ones).
                let mut tests = litmus::classic::all();
                tests.extend(litmus::paper::all());
                tests.extend(litmus::gen::generated_corpus(litmus::gen::DEFAULT_SEED, 0));
                let mut runs = Vec::new();
                for l in &tests {
                    for atomicity in Atomicity::ALL {
                        let prog = l.program.with_atomicity(atomicity);
                        let cfg = config_for(32, atomicity);
                        runs.push((cfg, lower_with_line_size(&prog, cfg.line_size)));
                    }
                }
                runs
            }
            Shape::LitmusAtScale => {
                let tests = [
                    litmus::gen::sb_ring(16),
                    litmus::gen::sb_ring(24),
                    litmus::gen::mp_chain(16),
                    litmus::gen::mp_chain(24),
                    litmus::gen::lb_ring(16),
                    litmus::gen::two_two_w_ring(16),
                    litmus::gen::iriw(10),
                ];
                tests
                    .iter()
                    .map(|l| {
                        let cfg = config_for(32, Atomicity::Type2);
                        (cfg, lower_with_line_size(&l.program, cfg.line_size))
                    })
                    .collect()
            }
        }
    }
}

struct Row {
    name: String,
    cores: usize,
    runs: usize,
    cycles: u64,
    event_ms: f64,
    lockstep_ms: f64,
    hybrid_ms: f64,
    results_match: bool,
    paper_scale: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.lockstep_ms / self.event_ms.max(1e-6)
    }

    fn hybrid_speedup(&self) -> f64 {
        self.lockstep_ms / self.hybrid_ms.max(1e-6)
    }
}

fn run_all(runs: &[(SimConfig, Vec<Trace>)], mode: StepMode) -> (Vec<SimResult>, f64) {
    let start = Instant::now();
    let results: Vec<SimResult> = runs
        .iter()
        .map(|(cfg, traces)| {
            let mut cfg = *cfg;
            cfg.step_mode = mode;
            Machine::new(cfg, traces.clone()).run()
        })
        .collect();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (results, ms)
}

/// Timed passes per engine; the minimum is reported (robust against
/// scheduler noise on shared machines).
const PASSES: usize = 5;

/// Cycle-identity of two result sets (the engine-equivalence contract;
/// `engine` diagnostics legitimately differ between step modes).
fn same_results(a: &[SimResult], b: &[SimResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(a, b)| {
            a.stats == b.stats
                && a.per_core == b.per_core
                && a.reads == b.reads
                && a.memory == b.memory
                && a.net == b.net
                && a.deadlocked == b.deadlocked
        })
}

fn measure(shape: &Shape) -> Row {
    let runs = shape.runs();
    // Warm-up (allocator growth, page faults) so no engine pays
    // first-run costs; then timed passes over identical inputs.
    let _ = run_all(&runs, StepMode::EventDriven);
    let (ev, mut event_ms) = run_all(&runs, StepMode::EventDriven);
    let (ls, mut lockstep_ms) = run_all(&runs, StepMode::Lockstep);
    let (hy, mut hybrid_ms) = run_all(&runs, StepMode::Hybrid);
    // The remaining passes rotate the engine order: slow drift in machine
    // speed (frequency scaling, throttling) would otherwise systematically
    // tax whichever engine always ran last in the rotation.
    const ORDER: [StepMode; 3] = [StepMode::EventDriven, StepMode::Lockstep, StepMode::Hybrid];
    for p in 1..PASSES {
        for k in 0..ORDER.len() {
            let mode = ORDER[(p + k) % ORDER.len()];
            let ms = run_all(&runs, mode).1;
            match mode {
                StepMode::EventDriven => event_ms = event_ms.min(ms),
                StepMode::Lockstep => lockstep_ms = lockstep_ms.min(ms),
                StepMode::Hybrid => hybrid_ms = hybrid_ms.min(ms),
            }
        }
    }
    let results_match = same_results(&ev, &ls) && same_results(&hy, &ls);
    assert!(
        ev.iter().all(|r| !r.deadlocked),
        "{}: deadlocked — the avoidance scheme failed",
        shape.name()
    );
    Row {
        name: shape.name(),
        cores: shape.cores(),
        runs: runs.len(),
        cycles: ev.iter().map(|r| r.stats.cycles).sum(),
        event_ms,
        lockstep_ms,
        hybrid_ms,
        results_match,
        paper_scale: shape.cores() == 32,
    }
}

fn to_json(rows: &[Row], mode: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"sim_scaling\",");
    let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"shapes\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"cores\": {},", r.cores);
        let _ = writeln!(s, "      \"machine_runs\": {},", r.runs);
        let _ = writeln!(s, "      \"simulated_cycles\": {},", r.cycles);
        let _ = writeln!(s, "      \"event_ms\": {:.3},", r.event_ms);
        let _ = writeln!(s, "      \"lockstep_ms\": {:.3},", r.lockstep_ms);
        let _ = writeln!(s, "      \"hybrid_ms\": {:.3},", r.hybrid_ms);
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.speedup());
        let _ = writeln!(s, "      \"hybrid_speedup\": {:.3},", r.hybrid_speedup());
        let _ = writeln!(s, "      \"paper_scale\": {},", r.paper_scale);
        let _ = writeln!(s, "      \"results_match\": {}", r.results_match);
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    // Headline: the best paper-scale (32-core) shape — the corpus-on-
    // Table-2 configuration the scheduler was built for. The kernel rows
    // stay recorded as the dense lower bound.
    let headline: Vec<&Row> = {
        let paper: Vec<&Row> = rows.iter().filter(|r| r.paper_scale).collect();
        if paper.is_empty() {
            rows.iter().collect()
        } else {
            paper
        }
    };
    let max = headline.iter().map(|r| r.speedup()).fold(0.0, f64::max);
    let geomean = if headline.is_empty() {
        0.0
    } else {
        let log_sum: f64 = headline.iter().map(|r| r.speedup().ln()).sum();
        (log_sum / headline.len() as f64).exp()
    };
    let hybrid_max = headline
        .iter()
        .map(|r| r.hybrid_speedup())
        .fold(0.0, f64::max);
    let hybrid_geomean = if headline.is_empty() {
        0.0
    } else {
        let log_sum: f64 = headline.iter().map(|r| r.hybrid_speedup().ln()).sum();
        (log_sum / headline.len() as f64).exp()
    };
    let _ = writeln!(s, "  \"headline\": {{");
    let _ = writeln!(s, "    \"count\": {},", headline.len());
    let _ = writeln!(
        s,
        "    \"paper_scale\": {},",
        headline.iter().all(|r| r.paper_scale)
    );
    let _ = writeln!(s, "    \"max_speedup\": {max:.3},");
    let _ = writeln!(s, "    \"geomean_speedup\": {geomean:.3},");
    let _ = writeln!(s, "    \"hybrid_max_speedup\": {hybrid_max:.3},");
    let _ = writeln!(s, "    \"hybrid_geomean_speedup\": {hybrid_geomean:.3}");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn usage() -> ! {
    eprintln!("usage: sim_scaling [--smoke] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_sim.json".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    usage()
                })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    let shapes: Vec<Shape> = if smoke {
        vec![
            Shape::LitmusCorpus,
            Shape::LitmusAtScale,
            // One scaled-machine row so CI proves the 128-core engines
            // agree, not just the paper-scale ones.
            Shape::Kernel {
                bench: Benchmark::Genome,
                cores: 128,
                memops: 2_000,
                atomicity: Atomicity::Type2,
            },
        ]
    } else {
        let kernel = |bench, atomicity| Shape::Kernel {
            bench,
            cores: 32,
            memops: 20_000,
            atomicity,
        };
        vec![
            Shape::LitmusCorpus,
            Shape::LitmusAtScale,
            kernel(Benchmark::Radiosity, Atomicity::Type1),
            kernel(Benchmark::Radiosity, Atomicity::Type2),
            kernel(Benchmark::Bayes, Atomicity::Type2),
            kernel(Benchmark::WsqMstRr, Atomicity::Type3),
            // The scaled machines the paper never evaluated: same Table 2
            // latencies, 128/256 cores. Lockstep pays every core every
            // cycle; the adaptive engines must not.
            Shape::Kernel {
                bench: Benchmark::Genome,
                cores: 128,
                memops: 2_000,
                atomicity: Atomicity::Type2,
            },
            Shape::Kernel {
                bench: Benchmark::Raytrace,
                cores: 256,
                memops: 1_000,
                atomicity: Atomicity::Type3,
            },
        ]
    };

    println!(
        "sim_scaling ({}): event-driven + hybrid vs lockstep reference",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<42} {:>12} {:>9} {:>9} {:>12} {:>7} {:>7}",
        "shape", "sim cycles", "event ms", "hyb ms", "lockstep ms", "ev x", "hyb x"
    );
    let mut rows = Vec::new();
    for shape in &shapes {
        let row = measure(shape);
        println!(
            "{:<42} {:>12} {:>9.1} {:>9.1} {:>12.1} {:>6.1}x {:>6.1}x",
            row.name,
            row.cycles,
            row.event_ms,
            row.hybrid_ms,
            row.lockstep_ms,
            row.speedup(),
            row.hybrid_speedup()
        );
        if !row.results_match {
            eprintln!("ERROR: {}: engines disagree", row.name);
            std::process::exit(1);
        }
        rows.push(row);
    }

    let json = to_json(&rows, if smoke { "smoke" } else { "full" });
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("\nwrote {out_path}");
}
