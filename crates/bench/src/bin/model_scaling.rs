//! Model-search scaling sweep: streaming pruned engine vs. the legacy
//! materializing enumerator, recorded as `BENCH_model.json`.
//!
//! For each shape of the [`bench::model_shapes::dekker_variant`] family the
//! binary measures the streaming engine (`for_each_valid_execution`) and —
//! where the candidate space fits in memory — the legacy
//! `enumerate_candidates` + `check_validity` pipeline, asserts both engines
//! produce the same outcome set, and reports the speedup. The largest shape
//! (3 threads × 3 rounds ≈ 5.7 · 10⁷ candidates, tens of GiB materialized)
//! is streaming-only: the legacy enumerator cannot finish it in memory.
//!
//! Usage:
//!
//! ```console
//! $ cargo run --release -p bench --bin model_scaling [-- --smoke] [--out PATH]
//! ```
//!
//! `--smoke` restricts the sweep to the fast shapes (CI's `bench-smoke`
//! job); `--out` overrides the JSON path (default `BENCH_model.json` in the
//! current directory).

use bench::model_shapes::{dekker_variant, dekker_variant_candidates};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::time::Instant;
use tso_model::{
    check_validity, enumerate_candidates, for_each_valid_execution, Outcome, SearchStats,
};

/// Shapes smaller than this (materialized candidates) are calibration
/// rows: both engines finish in microseconds there, so they are excluded
/// from the headline `shared` speedup aggregate.
const SHARED_MIN_CANDIDATES: f64 = 1000.0;

/// One measured shape.
struct Row {
    name: String,
    threads: usize,
    rounds: usize,
    events: usize,
    /// Candidates the legacy enumerator materializes (analytic count).
    candidates: f64,
    streaming_ms: f64,
    stats: SearchStats,
    outcomes: usize,
    /// `None` when the legacy enumerator was skipped (infeasible).
    legacy_ms: Option<f64>,
    outcomes_match: Option<bool>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.legacy_ms.map(|l| l / self.streaming_ms.max(1e-6))
    }
}

fn measure(threads: usize, rounds: usize, run_legacy: bool) -> Row {
    let program = dekker_variant(threads, rounds);
    let events = threads * rounds * 2 + threads; // per-thread W+R pairs + init writes

    let start = Instant::now();
    let mut streamed: BTreeSet<Outcome> = BTreeSet::new();
    let stats = for_each_valid_execution(&program, |exec| {
        streamed.insert(Outcome::of_execution(exec));
        ControlFlow::Continue(())
    });
    let streaming_ms = start.elapsed().as_secs_f64() * 1e3;

    let (legacy_ms, outcomes_match) = if run_legacy {
        let start = Instant::now();
        let legacy: BTreeSet<Outcome> = enumerate_candidates(&program)
            .into_iter()
            .filter(|c| check_validity(c).is_valid())
            .map(|c| Outcome::of_execution(&c))
            .collect();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        (Some(ms), Some(legacy == streamed))
    } else {
        (None, None)
    };

    Row {
        name: format!("dekker n={threads} r={rounds}"),
        threads,
        rounds,
        events,
        candidates: dekker_variant_candidates(threads, rounds),
        streaming_ms,
        stats,
        outcomes: streamed.len(),
        legacy_ms,
        outcomes_match,
    }
}

fn json_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

fn to_json(rows: &[Row], mode: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"model_scaling\",");
    let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"shapes\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(s, "      \"events\": {},", r.events);
        let _ = writeln!(s, "      \"candidates\": {},", json_num(r.candidates));
        let _ = writeln!(s, "      \"streaming_ms\": {},", json_num(r.streaming_ms));
        let _ = writeln!(s, "      \"nodes\": {},", r.stats.nodes);
        let _ = writeln!(s, "      \"pruned\": {},", r.stats.pruned);
        let _ = writeln!(s, "      \"complete\": {},", r.stats.complete);
        let _ = writeln!(s, "      \"valid\": {},", r.stats.valid);
        let _ = writeln!(s, "      \"outcomes\": {},", r.outcomes);
        match r.legacy_ms {
            Some(ms) => {
                let _ = writeln!(s, "      \"legacy_ms\": {},", json_num(ms));
                let _ = writeln!(
                    s,
                    "      \"speedup\": {},",
                    json_num(r.speedup().unwrap_or(0.0))
                );
                let _ = writeln!(
                    s,
                    "      \"outcomes_match\": {}",
                    r.outcomes_match.unwrap_or(false)
                );
            }
            None => {
                let _ = writeln!(s, "      \"legacy_ms\": null,");
                let _ = writeln!(s, "      \"speedup\": null,");
                let _ = writeln!(s, "      \"outcomes_match\": null");
            }
        }
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    // The headline aggregate covers the *non-trivial* shared shapes: below
    // ~1000 candidates both engines finish in microseconds and the ratio
    // measures constant overhead, not scaling. The tiny rows stay in
    // `shapes` for the trajectory.
    let shared: Vec<&Row> = rows
        .iter()
        .filter(|r| r.legacy_ms.is_some() && r.candidates >= SHARED_MIN_CANDIDATES)
        .collect();
    let min = shared
        .iter()
        .filter_map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean = if shared.is_empty() {
        0.0
    } else {
        let log_sum: f64 = shared.iter().filter_map(|r| r.speedup()).map(f64::ln).sum();
        (log_sum / shared.len() as f64).exp()
    };
    let _ = writeln!(s, "  \"shared\": {{");
    let _ = writeln!(
        s,
        "    \"min_candidates\": {},",
        json_num(SHARED_MIN_CANDIDATES)
    );
    let _ = writeln!(s, "    \"count\": {},", shared.len());
    let _ = writeln!(
        s,
        "    \"min_speedup\": {},",
        json_num(if min.is_finite() { min } else { 0.0 })
    );
    let _ = writeln!(s, "    \"geomean_speedup\": {}", json_num(geomean));
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_model.json".to_owned());

    // (threads, rounds, run_legacy). Legacy is skipped where the
    // materialized candidate space stops fitting in memory.
    let shapes: &[(usize, usize, bool)] = if smoke {
        &[(2, 1, true), (2, 2, true), (3, 1, true), (2, 3, true)]
    } else {
        &[
            (2, 1, true),
            (2, 2, true),
            (3, 1, true),
            (3, 2, true),
            (2, 3, true),
            (2, 4, false),
            (3, 3, false),
        ]
    };

    println!(
        "model_scaling ({}): streaming pruned search vs legacy enumeration",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<16} {:>8} {:>14} {:>12} {:>12} {:>8} {:>10}",
        "shape", "events", "candidates", "stream ms", "legacy ms", "speedup", "outcomes"
    );
    let mut rows = Vec::new();
    for &(n, r, legacy) in shapes {
        let row = measure(n, r, legacy);
        println!(
            "{:<16} {:>8} {:>14.3e} {:>12.2} {:>12} {:>8} {:>10}",
            row.name,
            row.events,
            row.candidates,
            row.streaming_ms,
            row.legacy_ms
                .map_or("skipped".into(), |v| format!("{v:.2}")),
            row.speedup().map_or("-".into(), |v| format!("{v:.1}x")),
            row.outcomes,
        );
        if let Some(false) = row.outcomes_match {
            eprintln!("ERROR: {}: engines disagree on the outcome set", row.name);
            std::process::exit(1);
        }
        rows.push(row);
    }

    let json = to_json(&rows, if smoke { "smoke" } else { "full" });
    std::fs::write(&out_path, &json).expect("write BENCH_model.json");
    println!("\nwrote {out_path}");
}
