//! Model-search scaling sweep: streaming pruned engine vs. the legacy
//! materializing enumerator, plus the parallel root-split engine vs. the
//! sequential reference, recorded as `BENCH_model.json`.
//!
//! For each shape of the [`bench::model_shapes::dekker_variant`] family the
//! binary measures the streaming engine (`for_each_valid_execution`) and —
//! where the candidate space fits in memory — the legacy
//! `enumerate_candidates` + `check_validity` pipeline, asserts both engines
//! produce the same outcome set, and reports the speedup. The largest shape
//! (3 threads × 3 rounds ≈ 5.7 · 10⁷ candidates, tens of GiB materialized)
//! is streaming-only: the legacy enumerator cannot finish it in memory.
//!
//! Every shape is then re-run on the **parallel** engine
//! (`allowed_outcomes_par`) at each `--par-workers` count, asserting the
//! outcome set is identical to the sequential stream and recording the
//! wall-clock ratio. Equality must hold everywhere; the speedup is only
//! meaningful when the host actually has cores
//! (`host_parallelism` is recorded in the JSON so CI can gate the ≥2×
//! floor on it).
//!
//! Usage:
//!
//! ```console
//! $ cargo run --release -p bench --bin model_scaling \
//!     [-- --smoke] [--out PATH] [--par-workers 2,4]
//! ```
//!
//! `--smoke` restricts the sweep to the fast shapes (CI's `bench-smoke`
//! job); `--out` overrides the JSON path (default `BENCH_model.json` in the
//! current directory).

use bench::model_shapes::{dekker_variant, dekker_variant_candidates};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::time::Instant;
use tso_model::{
    allowed_outcomes_par, check_validity, enumerate_candidates, for_each_valid_execution, Outcome,
    SearchStats,
};

/// Shapes smaller than this (materialized candidates) are calibration
/// rows: both engines finish in microseconds there, so they are excluded
/// from the headline `shared` speedup aggregate.
const SHARED_MIN_CANDIDATES: f64 = 1000.0;

/// One parallel measurement of a shape.
struct ParRow {
    workers: usize,
    ms: f64,
    outcomes_match: bool,
}

/// One measured shape.
struct Row {
    name: String,
    threads: usize,
    rounds: usize,
    events: usize,
    /// Candidates the legacy enumerator materializes (analytic count).
    candidates: f64,
    streaming_ms: f64,
    stats: SearchStats,
    outcomes: usize,
    /// `None` when the legacy enumerator was skipped (infeasible).
    legacy_ms: Option<f64>,
    outcomes_match: Option<bool>,
    /// Parallel engine at each requested worker count.
    parallel: Vec<ParRow>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.legacy_ms.map(|l| l / self.streaming_ms.max(1e-6))
    }

    fn par_speedup(&self, p: &ParRow) -> f64 {
        self.streaming_ms / p.ms.max(1e-6)
    }
}

fn measure(threads: usize, rounds: usize, run_legacy: bool, par_workers: &[usize]) -> Row {
    let program = dekker_variant(threads, rounds);
    let events = threads * rounds * 2 + threads; // per-thread W+R pairs + init writes

    let start = Instant::now();
    let mut streamed: BTreeSet<Outcome> = BTreeSet::new();
    let stats = for_each_valid_execution(&program, |exec| {
        streamed.insert(Outcome::of_execution(exec));
        ControlFlow::Continue(())
    });
    let streaming_ms = start.elapsed().as_secs_f64() * 1e3;

    let (legacy_ms, outcomes_match) = if run_legacy {
        let start = Instant::now();
        let legacy: BTreeSet<Outcome> = enumerate_candidates(&program)
            .into_iter()
            .filter(|c| check_validity(c).is_valid())
            .map(|c| Outcome::of_execution(&c))
            .collect();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        (Some(ms), Some(legacy == streamed))
    } else {
        (None, None)
    };

    let parallel = par_workers
        .iter()
        .map(|&workers| {
            let start = Instant::now();
            let par = allowed_outcomes_par(&program, workers);
            ParRow {
                workers,
                ms: start.elapsed().as_secs_f64() * 1e3,
                outcomes_match: par == streamed,
            }
        })
        .collect();

    Row {
        name: format!("dekker n={threads} r={rounds}"),
        threads,
        rounds,
        events,
        candidates: dekker_variant_candidates(threads, rounds),
        streaming_ms,
        stats,
        outcomes: streamed.len(),
        legacy_ms,
        outcomes_match,
        parallel,
    }
}

fn json_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

fn to_json(rows: &[Row], mode: &str, host_parallelism: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"model_scaling\",");
    let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(s, "  \"shapes\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(s, "      \"events\": {},", r.events);
        let _ = writeln!(s, "      \"candidates\": {},", json_num(r.candidates));
        let _ = writeln!(s, "      \"streaming_ms\": {},", json_num(r.streaming_ms));
        let _ = writeln!(s, "      \"nodes\": {},", r.stats.nodes);
        let _ = writeln!(s, "      \"pruned\": {},", r.stats.pruned);
        let _ = writeln!(s, "      \"complete\": {},", r.stats.complete);
        let _ = writeln!(s, "      \"valid\": {},", r.stats.valid);
        let _ = writeln!(s, "      \"outcomes\": {},", r.outcomes);
        let _ = writeln!(s, "      \"parallel\": [");
        for (j, p) in r.parallel.iter().enumerate() {
            let comma = if j + 1 < r.parallel.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"workers\": {}, \"ms\": {}, \"speedup_vs_sequential\": {}, \
                 \"outcomes_match\": {}}}{comma}",
                p.workers,
                json_num(p.ms),
                json_num(r.par_speedup(p)),
                p.outcomes_match
            );
        }
        let _ = writeln!(s, "      ],");
        match r.legacy_ms {
            Some(ms) => {
                let _ = writeln!(s, "      \"legacy_ms\": {},", json_num(ms));
                let _ = writeln!(
                    s,
                    "      \"speedup\": {},",
                    json_num(r.speedup().unwrap_or(0.0))
                );
                let _ = writeln!(
                    s,
                    "      \"outcomes_match\": {}",
                    r.outcomes_match.unwrap_or(false)
                );
            }
            None => {
                let _ = writeln!(s, "      \"legacy_ms\": null,");
                let _ = writeln!(s, "      \"speedup\": null,");
                let _ = writeln!(s, "      \"outcomes_match\": null");
            }
        }
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    // The headline aggregate covers the *non-trivial* shared shapes: below
    // ~1000 candidates both engines finish in microseconds and the ratio
    // measures constant overhead, not scaling. The tiny rows stay in
    // `shapes` for the trajectory.
    let shared: Vec<&Row> = rows
        .iter()
        .filter(|r| r.legacy_ms.is_some() && r.candidates >= SHARED_MIN_CANDIDATES)
        .collect();
    let min = shared
        .iter()
        .filter_map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean = if shared.is_empty() {
        0.0
    } else {
        let log_sum: f64 = shared.iter().filter_map(|r| r.speedup()).map(f64::ln).sum();
        (log_sum / shared.len() as f64).exp()
    };
    let _ = writeln!(s, "  \"shared\": {{");
    let _ = writeln!(
        s,
        "    \"min_candidates\": {},",
        json_num(SHARED_MIN_CANDIDATES)
    );
    let _ = writeln!(s, "    \"count\": {},", shared.len());
    let _ = writeln!(
        s,
        "    \"min_speedup\": {},",
        json_num(if min.is_finite() { min } else { 0.0 })
    );
    let _ = writeln!(s, "    \"geomean_speedup\": {}", json_num(geomean));
    let _ = writeln!(s, "  }},");
    // Parallel headline: best parallel speedup over the non-trivial
    // shapes (meaningful only when host_parallelism > 1 — CI gates its
    // floor on that; equality is asserted unconditionally above).
    let best = rows
        .iter()
        .filter(|r| r.candidates >= SHARED_MIN_CANDIDATES)
        .flat_map(|r| r.parallel.iter().map(move |p| (r, p)))
        .map(|(r, p)| r.par_speedup(p))
        .fold(0.0f64, f64::max);
    let all_match = rows
        .iter()
        .all(|r| r.parallel.iter().all(|p| p.outcomes_match));
    let _ = writeln!(s, "  \"parallel\": {{");
    let _ = writeln!(s, "    \"all_outcomes_match\": {all_match},");
    let _ = writeln!(s, "    \"best_speedup\": {}", json_num(best));
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_model.json".to_owned());
    let par_workers: Vec<usize> = args
        .iter()
        .position(|a| a == "--par-workers")
        .and_then(|i| args.get(i + 1))
        .map(|csv| {
            csv.split(',')
                .map(|w| w.parse().expect("--par-workers takes e.g. 2,4"))
                .collect()
        })
        .unwrap_or_else(|| vec![2, 4]);

    // (threads, rounds, run_legacy). Legacy is skipped where the
    // materialized candidate space stops fitting in memory. The big
    // streaming-only shapes are exactly where the parallel engine earns
    // its keep, so dekker n=3 r=3 stays in the smoke sweep too.
    let shapes: &[(usize, usize, bool)] = if smoke {
        &[
            (2, 1, true),
            (2, 2, true),
            (3, 1, true),
            (2, 3, true),
            (3, 3, false),
        ]
    } else {
        &[
            (2, 1, true),
            (2, 2, true),
            (3, 1, true),
            (3, 2, true),
            (2, 3, true),
            (2, 4, false),
            (3, 3, false),
        ]
    };

    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "model_scaling ({}): streaming pruned search vs legacy enumeration, \
         parallel workers {:?} (host parallelism {host_parallelism})",
        if smoke { "smoke" } else { "full" },
        par_workers
    );
    println!(
        "{:<16} {:>8} {:>14} {:>12} {:>12} {:>8} {:>10} {:>16}",
        "shape",
        "events",
        "candidates",
        "stream ms",
        "legacy ms",
        "speedup",
        "outcomes",
        "par ms (speedup)"
    );
    let mut rows = Vec::new();
    for &(n, r, legacy) in shapes {
        let row = measure(n, r, legacy, &par_workers);
        let par_col = row
            .parallel
            .iter()
            .map(|p| format!("{}w {:.1} ({:.2}x)", p.workers, p.ms, row.par_speedup(p)))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<16} {:>8} {:>14.3e} {:>12.2} {:>12} {:>8} {:>10} {:>16}",
            row.name,
            row.events,
            row.candidates,
            row.streaming_ms,
            row.legacy_ms
                .map_or("skipped".into(), |v| format!("{v:.2}")),
            row.speedup().map_or("-".into(), |v| format!("{v:.1}x")),
            row.outcomes,
            par_col,
        );
        if let Some(false) = row.outcomes_match {
            eprintln!("ERROR: {}: engines disagree on the outcome set", row.name);
            std::process::exit(1);
        }
        if let Some(bad) = row.parallel.iter().find(|p| !p.outcomes_match) {
            eprintln!(
                "ERROR: {}: parallel engine at {} workers disagrees with sequential",
                row.name, bad.workers
            );
            std::process::exit(1);
        }
        rows.push(row);
    }

    let json = to_json(
        &rows,
        if smoke { "smoke" } else { "full" },
        host_parallelism,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_model.json");
    println!("\nwrote {out_path}");
}
