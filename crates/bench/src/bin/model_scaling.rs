//! Model-search scaling sweep: streaming pruned engine vs. the legacy
//! materializing enumerator, plus the parallel root-split engine vs. the
//! sequential reference, recorded as `BENCH_model.json`.
//!
//! For each shape of the [`bench::model_shapes::dekker_variant`] family the
//! binary measures the streaming engine (`for_each_valid_execution`) and —
//! where the candidate space fits in memory — the legacy
//! `enumerate_candidates` + `check_validity` pipeline, asserts both engines
//! produce the same outcome set, and reports the speedup. The largest shape
//! (3 threads × 3 rounds ≈ 5.7 · 10⁷ candidates, tens of GiB materialized)
//! is streaming-only: the legacy enumerator cannot finish it in memory.
//!
//! Every shape is then re-run on the **adaptive parallel** engine
//! (`allowed_outcomes_par`) at each `--par-workers` count, asserting the
//! outcome set is identical to the sequential stream and recording the
//! wall-clock ratio plus whether the engine actually chose to fan out
//! (`split`). The adaptive policy must keep every shape within noise of
//! sequential (the `adaptive.never_slower` headline, gated in CI
//! unconditionally); the ≥2× `best_speedup` floor is only meaningful when
//! the host actually has cores (`host_parallelism` is recorded in the
//! JSON so CI can gate it on that).
//!
//! A final sweep measures **prefix-certificate sharing**
//! (`tso_model::prefix`) on the `dekker_rmw` family: each `(n, rounds)`
//! shape is queried under all three RMW atomicities through the verdict
//! cache; the first rewrite searches, the siblings replay its certificate,
//! and the JSON records the reduction in *searched* decision nodes versus
//! the attributed (3-searches) total. CI gates `reduction ≥ 2` on the
//! family totals.
//!
//! Usage:
//!
//! ```console
//! $ cargo run --release -p bench --bin model_scaling \
//!     [-- --smoke] [--out PATH] [--par-workers 2,4]
//! ```
//!
//! `--smoke` restricts the sweep to the fast shapes (CI's `bench-smoke`
//! job); `--out` overrides the JSON path (default `BENCH_model.json` in the
//! current directory).

use bench::model_shapes::{dekker_rmw, dekker_variant, dekker_variant_candidates};
use rmw_types::Atomicity;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::time::Instant;
use tso_model::{
    allowed_outcomes, allowed_outcomes_cached, allowed_outcomes_par_with_stats, check_validity,
    enumerate_candidates, for_each_valid_execution, Outcome, SearchStats,
};

/// Shapes smaller than this (materialized candidates) are calibration
/// rows: both engines finish in microseconds there, so they are excluded
/// from the headline `shared` speedup aggregate.
const SHARED_MIN_CANDIDATES: f64 = 1000.0;

/// Absolute wall-clock slack for the `never_slower` adaptive gate: shapes
/// finish in tens of microseconds, where scheduler jitter easily exceeds
/// any relative bound, so a row only violates the floor when it is slower
/// by *both* the 0.9× ratio and this many milliseconds.
const ADAPTIVE_NOISE_MS: f64 = 0.5;

/// Relative floor for the adaptive gate: parallel must stay within
/// `1/ADAPTIVE_FLOOR` of sequential on every shape.
const ADAPTIVE_FLOOR: f64 = 0.9;

/// One parallel measurement of a shape.
struct ParRow {
    workers: usize,
    ms: f64,
    outcomes_match: bool,
    /// True when the adaptive engine fanned out (stats.tasks > 1) instead
    /// of taking its sequential path.
    split: bool,
}

/// One measured shape.
struct Row {
    name: String,
    threads: usize,
    rounds: usize,
    events: usize,
    /// Candidates the legacy enumerator materializes (analytic count).
    candidates: f64,
    streaming_ms: f64,
    stats: SearchStats,
    outcomes: usize,
    /// `None` when the legacy enumerator was skipped (infeasible).
    legacy_ms: Option<f64>,
    outcomes_match: Option<bool>,
    /// Parallel engine at each requested worker count.
    parallel: Vec<ParRow>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.legacy_ms.map(|l| l / self.streaming_ms.max(1e-6))
    }

    fn par_speedup(&self, p: &ParRow) -> f64 {
        self.streaming_ms / p.ms.max(1e-6)
    }
}

fn measure(threads: usize, rounds: usize, run_legacy: bool, par_workers: &[usize]) -> Row {
    let program = dekker_variant(threads, rounds);
    let events = threads * rounds * 2 + threads; // per-thread W+R pairs + init writes

    let start = Instant::now();
    let mut streamed: BTreeSet<Outcome> = BTreeSet::new();
    let stats = for_each_valid_execution(&program, |exec| {
        streamed.insert(Outcome::of_execution(exec));
        ControlFlow::Continue(())
    });
    let streaming_ms = start.elapsed().as_secs_f64() * 1e3;

    let (legacy_ms, outcomes_match) = if run_legacy {
        let start = Instant::now();
        let legacy: BTreeSet<Outcome> = enumerate_candidates(&program)
            .into_iter()
            .filter(|c| check_validity(c).is_valid())
            .map(|c| Outcome::of_execution(&c))
            .collect();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        (Some(ms), Some(legacy == streamed))
    } else {
        (None, None)
    };

    let parallel = par_workers
        .iter()
        .map(|&workers| {
            let start = Instant::now();
            let (par, par_stats) = allowed_outcomes_par_with_stats(&program, workers);
            ParRow {
                workers,
                ms: start.elapsed().as_secs_f64() * 1e3,
                outcomes_match: par == streamed,
                split: par_stats.tasks > 1,
            }
        })
        .collect();

    Row {
        name: format!("dekker n={threads} r={rounds}"),
        threads,
        rounds,
        events,
        candidates: dekker_variant_candidates(threads, rounds),
        streaming_ms,
        stats,
        outcomes: streamed.len(),
        legacy_ms,
        outcomes_match,
        parallel,
    }
}

/// One `(n, rounds)` family of the prefix-sharing sweep: three atomicity
/// rewrites queried through the verdict cache.
struct PrefixRow {
    name: String,
    threads: usize,
    rounds: usize,
    /// Decision nodes of searches that actually ran for this family.
    searched_nodes: u64,
    /// Attributed nodes summed over all three rewrites — what three
    /// independent searches would have cost.
    attributed_nodes: u64,
    /// Rewrites answered by certificate replay.
    prefix_hits: u64,
    /// Every rewrite's cached outcome set equals its direct search.
    outcomes_match: bool,
    ms: f64,
}

impl PrefixRow {
    fn reduction(&self) -> f64 {
        self.attributed_nodes as f64 / (self.searched_nodes.max(1)) as f64
    }
}

/// Queries one `dekker_rmw` family (all three atomicities) through the
/// verdict cache and tallies how much of the decision work certificate
/// replay avoided.
fn measure_prefix_family(threads: usize, rounds: usize) -> PrefixRow {
    let start = Instant::now();
    let mut searched_nodes = 0u64;
    let mut attributed_nodes = 0u64;
    let mut prefix_hits = 0u64;
    let mut outcomes_match = true;
    for atomicity in Atomicity::ALL {
        let program = dekker_rmw(threads, rounds, atomicity);
        let got = allowed_outcomes_cached(&program);
        attributed_nodes += got.stats.nodes;
        if got.prefix_hit {
            prefix_hits += 1;
        } else if !got.hit {
            searched_nodes += got.stats.nodes;
        }
        outcomes_match &= got.outcomes == allowed_outcomes(&program);
    }
    PrefixRow {
        name: format!("dekker-rmw n={threads} r={rounds}"),
        threads,
        rounds,
        searched_nodes,
        attributed_nodes,
        prefix_hits,
        outcomes_match,
        ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn json_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

fn to_json(rows: &[Row], prefix_rows: &[PrefixRow], mode: &str, host_parallelism: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"model_scaling\",");
    let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(s, "  \"shapes\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(s, "      \"events\": {},", r.events);
        let _ = writeln!(s, "      \"candidates\": {},", json_num(r.candidates));
        let _ = writeln!(s, "      \"streaming_ms\": {},", json_num(r.streaming_ms));
        let _ = writeln!(s, "      \"nodes\": {},", r.stats.nodes);
        let _ = writeln!(s, "      \"pruned\": {},", r.stats.pruned);
        let _ = writeln!(s, "      \"complete\": {},", r.stats.complete);
        let _ = writeln!(s, "      \"valid\": {},", r.stats.valid);
        let _ = writeln!(s, "      \"outcomes\": {},", r.outcomes);
        let _ = writeln!(s, "      \"parallel\": [");
        for (j, p) in r.parallel.iter().enumerate() {
            let comma = if j + 1 < r.parallel.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"workers\": {}, \"ms\": {}, \"speedup_vs_sequential\": {}, \
                 \"split\": {}, \"outcomes_match\": {}}}{comma}",
                p.workers,
                json_num(p.ms),
                json_num(r.par_speedup(p)),
                p.split,
                p.outcomes_match
            );
        }
        let _ = writeln!(s, "      ],");
        match r.legacy_ms {
            Some(ms) => {
                let _ = writeln!(s, "      \"legacy_ms\": {},", json_num(ms));
                let _ = writeln!(
                    s,
                    "      \"speedup\": {},",
                    json_num(r.speedup().unwrap_or(0.0))
                );
                let _ = writeln!(
                    s,
                    "      \"outcomes_match\": {}",
                    r.outcomes_match.unwrap_or(false)
                );
            }
            None => {
                let _ = writeln!(s, "      \"legacy_ms\": null,");
                let _ = writeln!(s, "      \"speedup\": null,");
                let _ = writeln!(s, "      \"outcomes_match\": null");
            }
        }
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    // The headline aggregate covers the *non-trivial* shared shapes: below
    // ~1000 candidates both engines finish in microseconds and the ratio
    // measures constant overhead, not scaling. The tiny rows stay in
    // `shapes` for the trajectory.
    let shared: Vec<&Row> = rows
        .iter()
        .filter(|r| r.legacy_ms.is_some() && r.candidates >= SHARED_MIN_CANDIDATES)
        .collect();
    let min = shared
        .iter()
        .filter_map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean = if shared.is_empty() {
        0.0
    } else {
        let log_sum: f64 = shared.iter().filter_map(|r| r.speedup()).map(f64::ln).sum();
        (log_sum / shared.len() as f64).exp()
    };
    let _ = writeln!(s, "  \"shared\": {{");
    let _ = writeln!(
        s,
        "    \"min_candidates\": {},",
        json_num(SHARED_MIN_CANDIDATES)
    );
    let _ = writeln!(s, "    \"count\": {},", shared.len());
    let _ = writeln!(
        s,
        "    \"min_speedup\": {},",
        json_num(if min.is_finite() { min } else { 0.0 })
    );
    let _ = writeln!(s, "    \"geomean_speedup\": {}", json_num(geomean));
    let _ = writeln!(s, "  }},");
    // Parallel headline: best parallel speedup over the non-trivial
    // shapes (meaningful only when host_parallelism > 1 — CI gates its
    // floor on that; equality is asserted unconditionally above).
    let best = rows
        .iter()
        .filter(|r| r.candidates >= SHARED_MIN_CANDIDATES)
        .flat_map(|r| r.parallel.iter().map(move |p| (r, p)))
        .map(|(r, p)| r.par_speedup(p))
        .fold(0.0f64, f64::max);
    let all_match = rows
        .iter()
        .all(|r| r.parallel.iter().all(|p| p.outcomes_match));
    let _ = writeln!(s, "  \"parallel\": {{");
    let _ = writeln!(s, "    \"all_outcomes_match\": {all_match},");
    let _ = writeln!(s, "    \"best_speedup\": {}", json_num(best));
    let _ = writeln!(s, "  }},");
    // The adaptive never-slower gate: on EVERY shape (including the tiny
    // calibration rows) the adaptive engine must stay within the relative
    // floor of sequential, modulo an absolute noise allowance — the whole
    // point of the split-size estimator is that small shapes no longer pay
    // fan-out overhead.
    let min_par_speedup = rows
        .iter()
        .flat_map(|r| r.parallel.iter().map(move |p| r.par_speedup(p)))
        .fold(f64::INFINITY, f64::min);
    let never_slower = rows.iter().all(|r| {
        r.parallel
            .iter()
            .all(|p| p.ms <= r.streaming_ms / ADAPTIVE_FLOOR + ADAPTIVE_NOISE_MS)
    });
    let _ = writeln!(s, "  \"adaptive\": {{");
    let _ = writeln!(s, "    \"floor\": {},", json_num(ADAPTIVE_FLOOR));
    let _ = writeln!(s, "    \"noise_ms\": {},", json_num(ADAPTIVE_NOISE_MS));
    let _ = writeln!(
        s,
        "    \"min_speedup\": {},",
        json_num(if min_par_speedup.is_finite() {
            min_par_speedup
        } else {
            0.0
        })
    );
    let _ = writeln!(s, "    \"never_slower\": {never_slower}");
    let _ = writeln!(s, "  }},");
    // Prefix-certificate sharing over the dekker_rmw family: three
    // atomicity rewrites per shape, one search + two replays each when
    // the certificate tier works.
    let _ = writeln!(s, "  \"prefix_sharing\": {{");
    let _ = writeln!(s, "    \"rows\": [");
    for (i, r) in prefix_rows.iter().enumerate() {
        let comma = if i + 1 < prefix_rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"threads\": {}, \"rounds\": {}, \
             \"searched_nodes\": {}, \"attributed_nodes\": {}, \"prefix_hits\": {}, \
             \"reduction\": {}, \"ms\": {}, \"outcomes_match\": {}}}{comma}",
            r.name,
            r.threads,
            r.rounds,
            r.searched_nodes,
            r.attributed_nodes,
            r.prefix_hits,
            json_num(r.reduction()),
            json_num(r.ms),
            r.outcomes_match
        );
    }
    let _ = writeln!(s, "    ],");
    let searched: u64 = prefix_rows.iter().map(|r| r.searched_nodes).sum();
    let attributed: u64 = prefix_rows.iter().map(|r| r.attributed_nodes).sum();
    let hits: u64 = prefix_rows.iter().map(|r| r.prefix_hits).sum();
    let prefix_match = prefix_rows.iter().all(|r| r.outcomes_match);
    let _ = writeln!(s, "    \"total_searched_nodes\": {searched},");
    let _ = writeln!(s, "    \"total_attributed_nodes\": {attributed},");
    let _ = writeln!(s, "    \"prefix_hits\": {hits},");
    let _ = writeln!(
        s,
        "    \"reduction\": {},",
        json_num(attributed as f64 / searched.max(1) as f64)
    );
    let _ = writeln!(s, "    \"all_outcomes_match\": {prefix_match}");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_model.json".to_owned());
    let par_workers: Vec<usize> = args
        .iter()
        .position(|a| a == "--par-workers")
        .and_then(|i| args.get(i + 1))
        .map(|csv| {
            csv.split(',')
                .map(|w| w.parse().expect("--par-workers takes e.g. 2,4"))
                .collect()
        })
        .unwrap_or_else(|| vec![2, 4]);

    // (threads, rounds, run_legacy). Legacy is skipped where the
    // materialized candidate space stops fitting in memory. The big
    // streaming-only shapes are exactly where the parallel engine earns
    // its keep, so dekker n=3 r=3 stays in the smoke sweep too.
    let shapes: &[(usize, usize, bool)] = if smoke {
        &[
            (2, 1, true),
            (2, 2, true),
            (3, 1, true),
            (2, 3, true),
            (3, 3, false),
        ]
    } else {
        &[
            (2, 1, true),
            (2, 2, true),
            (3, 1, true),
            (3, 2, true),
            (2, 3, true),
            (2, 4, false),
            (3, 3, false),
        ]
    };

    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "model_scaling ({}): streaming pruned search vs legacy enumeration, \
         parallel workers {:?} (host parallelism {host_parallelism})",
        if smoke { "smoke" } else { "full" },
        par_workers
    );
    // Warm the adaptive engine's once-per-process node-rate calibration
    // outside the timed region, so the first parallel row measures the
    // engine, not the calibration run.
    let _ = allowed_outcomes_par_with_stats(&dekker_variant(2, 1), 2);
    println!(
        "{:<16} {:>8} {:>14} {:>12} {:>12} {:>8} {:>10} {:>16}",
        "shape",
        "events",
        "candidates",
        "stream ms",
        "legacy ms",
        "speedup",
        "outcomes",
        "par ms (speedup)"
    );
    let mut rows = Vec::new();
    for &(n, r, legacy) in shapes {
        let row = measure(n, r, legacy, &par_workers);
        let par_col = row
            .parallel
            .iter()
            .map(|p| format!("{}w {:.1} ({:.2}x)", p.workers, p.ms, row.par_speedup(p)))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<16} {:>8} {:>14.3e} {:>12.2} {:>12} {:>8} {:>10} {:>16}",
            row.name,
            row.events,
            row.candidates,
            row.streaming_ms,
            row.legacy_ms
                .map_or("skipped".into(), |v| format!("{v:.2}")),
            row.speedup().map_or("-".into(), |v| format!("{v:.1}x")),
            row.outcomes,
            par_col,
        );
        if let Some(false) = row.outcomes_match {
            eprintln!("ERROR: {}: engines disagree on the outcome set", row.name);
            std::process::exit(1);
        }
        if let Some(bad) = row.parallel.iter().find(|p| !p.outcomes_match) {
            eprintln!(
                "ERROR: {}: parallel engine at {} workers disagrees with sequential",
                row.name, bad.workers
            );
            std::process::exit(1);
        }
        rows.push(row);
    }

    // Prefix-certificate sharing sweep: dekker_rmw families, three
    // atomicities each, through the verdict cache. Start from empty
    // process-wide caches so the reduction numbers are the sweep's own.
    let prefix_shapes: &[(usize, usize)] = if smoke {
        &[(2, 1), (2, 2)]
    } else {
        &[(2, 1), (2, 2), (3, 1), (2, 3)]
    };
    tso_model::cache::clear();
    tso_model::prefix::clear();
    println!(
        "\n{:<18} {:>14} {:>16} {:>12} {:>10} {:>10}",
        "prefix family", "searched", "attributed", "reduction", "hits", "ms"
    );
    let mut prefix_rows = Vec::new();
    for &(n, r) in prefix_shapes {
        let row = measure_prefix_family(n, r);
        println!(
            "{:<18} {:>14} {:>16} {:>11.1}x {:>10} {:>10.2}",
            row.name,
            row.searched_nodes,
            row.attributed_nodes,
            row.reduction(),
            row.prefix_hits,
            row.ms,
        );
        if !row.outcomes_match {
            eprintln!(
                "ERROR: {}: certificate replay disagrees with a direct search",
                row.name
            );
            std::process::exit(1);
        }
        prefix_rows.push(row);
    }

    let json = to_json(
        &rows,
        &prefix_rows,
        if smoke { "smoke" } else { "full" },
        host_parallelism,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_model.json");
    println!("\nwrote {out_path}");
}
