//! Harness scaling sweep: differential corpus throughput vs. worker count,
//! recorded as `BENCH_harness.json`.
//!
//! Runs the full litmus corpus (or the smoke subset) through the
//! `harness` batch runner at increasing `--jobs`, recording wall-clock,
//! throughput, and speedup over one worker. Every run must be
//! differentially clean — any model/simulator disagreement aborts the
//! sweep with a nonzero exit.
//!
//! Usage:
//!
//! ```console
//! $ cargo run --release -p bench --bin harness_scaling [-- --smoke] [--out PATH]
//! ```

use harness::{full_corpus, run_batch, smoke_filter, SMOKE_CAP};
use litmus::Litmus;
use std::fmt::Write as _;

struct Row {
    jobs: usize,
    elapsed_ms: f64,
    tests_per_sec: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_harness.json".to_owned());

    let corpus = full_corpus(litmus::gen::DEFAULT_SEED, litmus::gen::DEFAULT_RANDOM_COUNT);
    let corpus_total = corpus.len();
    let mut tests: Vec<Litmus> = if smoke {
        let mut t: Vec<Litmus> = corpus.into_iter().filter(smoke_filter).collect();
        t.truncate(SMOKE_CAP);
        t
    } else {
        corpus
    };
    // Fixed order for comparable runs.
    tests.sort_by(|a, b| a.name.cmp(&b.name));

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&j| j == 1 || j <= 2 * hw)
        .collect();

    println!(
        "harness_scaling ({}): {} tests, host parallelism {hw}",
        if smoke { "smoke" } else { "full" },
        tests.len()
    );
    println!(
        "{:<6} {:>12} {:>12} {:>9}",
        "jobs", "elapsed ms", "tests/s", "speedup"
    );
    // Untimed warm-up over the FULL selection: it pays the one-time
    // process costs (page faults, lazy init) and fully populates the
    // memoized verdict cache, so every sweep row below runs against the
    // same hot cache and the jobs ratio measures worker scaling, not
    // cache position.
    let _ = run_batch(&tests, 1);
    let cache_after_warmup = tso_model::cache::counters();
    let mut rows: Vec<Row> = Vec::new();
    for &jobs in &sweep {
        let (outcomes, elapsed) = run_batch(&tests, jobs);
        if let Some(bad) = outcomes.iter().find(|o| !o.passed()) {
            eprintln!("ERROR: {}: {}", bad.name, bad.diagnosis());
            std::process::exit(1);
        }
        let elapsed_ms = elapsed.as_secs_f64() * 1e3;
        let row = Row {
            jobs,
            elapsed_ms,
            tests_per_sec: tests.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        };
        let speedup = rows.first().map_or(1.0, |r0| r0.elapsed_ms / elapsed_ms);
        println!(
            "{:<6} {:>12.1} {:>12.0} {:>8.2}x",
            row.jobs, row.elapsed_ms, row.tests_per_sec, speedup
        );
        rows.push(row);
    }

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"harness_scaling\",");
    let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"corpus_total\": {corpus_total},");
    let _ = writeln!(s, "  \"selected\": {},", tests.len());
    let _ = writeln!(s, "  \"host_parallelism\": {hw},");
    let _ = writeln!(s, "  \"disagreements\": 0,");
    // Memoization accounting at the end of the warm-up pass: `queries`
    // counts every outcome-set lookup (corpus generation + one full
    // differential pass), `invocations` the model searches that actually
    // ran — the gap is the symmetry + memoization saving.
    let _ = writeln!(s, "  \"model_cache\": {{");
    let _ = writeln!(s, "    \"queries\": {},", cache_after_warmup.queries);
    let _ = writeln!(
        s,
        "    \"invocations\": {},",
        cache_after_warmup.invocations
    );
    let _ = writeln!(s, "    \"hits\": {},", cache_after_warmup.hits());
    let _ = writeln!(s, "    \"store_hits\": {},", cache_after_warmup.store_hits);
    let _ = writeln!(s, "    \"entries\": {}", cache_after_warmup.entries);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"sweep\": [");
    let base = rows.first().map_or(0.0, |r| r.elapsed_ms);
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"jobs\": {}, \"elapsed_ms\": {:.3}, \"tests_per_sec\": {:.1}, \
             \"speedup_vs_jobs1\": {:.3}}}{comma}",
            r.jobs,
            r.elapsed_ms,
            r.tests_per_sec,
            base / r.elapsed_ms.max(1e-6)
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    std::fs::write(&out_path, &s).expect("write BENCH_harness.json");
    println!("\nwrote {out_path}");
}
