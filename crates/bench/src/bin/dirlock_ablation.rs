//! Ablation for the §3.3 design choice: the type-3 directory-locking
//! protocol.
//!
//! With directory locking **on**, a type-3 RMW to a shared line acquires
//! only read permission and locks at the home directory — no invalidations
//! on the critical path. With it **off**, the implementation falls back to
//! acquiring exclusive ownership (the type-2 path), paying the invalidation
//! round trip. The paper credits this optimization for type-3's extra
//! savings over type-2 (up to 64.3 % vs 58.9 % off type-1).

use bench::{cli_scale, config_for, SEED};
use rmw_types::Atomicity;
use tso_sim::Machine;
use workloads::Benchmark;

fn main() {
    let (cores, memops) = cli_scale();
    println!("Directory-locking ablation (type-3 RMWs, {cores} cores, {memops} memops/core)");
    println!(
        "{:<14} {:>18} {:>18} {:>10}",
        "benchmark", "RaWa (dirlock on)", "RaWa (dirlock off)", "saving %"
    );
    for bench in Benchmark::ALL {
        let mut costs = [0.0f64; 2];
        for (i, dirlock) in [true, false].into_iter().enumerate() {
            let mut cfg = config_for(cores, Atomicity::Type3);
            cfg.directory_locking = dirlock;
            let traces = workloads::benchmark(bench, cores, memops, SEED);
            let r = Machine::new(cfg, traces).run();
            assert!(!r.deadlocked);
            costs[i] = r.stats.rmw_cost.ra_wa_cycles as f64 / r.stats.rmw_count as f64;
        }
        println!(
            "{:<14} {:>18.1} {:>18.1} {:>9.1}%",
            bench.name(),
            costs[0],
            costs[1],
            100.0 * (costs[1] - costs[0]) / costs[1]
        );
    }
    println!();
    println!("paper: directory locking removes the invalidation delay from the");
    println!("       critical path of type-3 RMWs to shared lines (§3.3).");
}
