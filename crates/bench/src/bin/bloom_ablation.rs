//! Ablation for the §3.2 design choice: Bloom filter size and hash count.
//!
//! The paper picks a 128-byte filter with 3 hash functions. Smaller filters
//! raise the false-positive rate, which shows up as *unnecessary
//! write-buffer drains* (Table 3's "% write-buffer drains" column grows);
//! correctness is unaffected.

use bench::{cli_scale, config_for, SEED};
use rmw_types::Atomicity;
use tso_sim::Machine;
use workloads::Benchmark;

fn main() {
    let (cores, memops) = cli_scale();
    // dedup has the most distinct RMW addresses — the stress case.
    let bench = Benchmark::Dedup;
    println!("Bloom-filter ablation ({bench}, {cores} cores, {memops} memops/core)");
    println!(
        "{:<12} {:>7} {:>12} {:>14} {:>14}",
        "size bytes", "hashes", "% drains", "avg RMW cost", "theoretical fpp"
    );
    for size in [8usize, 16, 32, 64, 128, 512] {
        for hashes in [1u32, 3, 5] {
            let mut cfg = config_for(cores, Atomicity::Type2);
            cfg.bloom_bytes = size;
            cfg.bloom_hashes = hashes;
            let traces = workloads::benchmark(bench, cores, memops, SEED);
            let r = Machine::new(cfg, traces).run();
            assert!(
                !r.deadlocked,
                "deadlock avoidance must hold at any filter size"
            );
            let filter = bloom::BloomFilter::new(size, hashes);
            println!(
                "{:<12} {:>7} {:>12.2} {:>14.1} {:>14.6}",
                size,
                hashes,
                r.stats.pct_drains(),
                r.stats.avg_rmw_cost(),
                filter.theoretical_fpp(r.stats.unique_rmw_addrs)
            );
        }
    }
    println!();
    println!("paper config: 128 B / 3 hashes — drains stay at Table 3 levels (≤0.2%).");
}
