//! Synchronization-zoo comparison: every lock/channel kernel on the full
//! Table 2 machine under all three RMW atomicities, recorded as
//! `BENCH_zoo.json`.
//!
//! This is the "Table 3 at scale" experiment for real algorithms instead
//! of statistical trace profiles: each zoo kernel is an actual protocol
//! (TAS/ticket/futex mutexes, reader-writer locks, condvar, SPSC ring,
//! one-shot channel, Arc refcount stress) with a machine-checkable
//! invariant. For every `(kernel, atomicity)` cell the row records the
//! simulated cost (cycles, RMW cost, overhead fraction) and the
//! contention/fairness profile (spin retries and cycles, futex
//! wait/wake/blocked counters, lock handoffs and wake-to-acquire
//! latency, per-core work spread) — and asserts:
//!
//! * the kernel's correctness invariant holds (mutual exclusion, FIFO
//!   order, refcount balance, …) — atomicity changes *when* RMWs cost,
//!   never *what* the protocol computes;
//! * both step engines produce cycle-identical results
//!   (`results_match`), extending the engine-equivalence contract to
//!   futex/branch/register control flow at paper scale;
//! * per kernel, the final memory image is identical across the three
//!   atomicities (`outcome_invariant`).
//!
//! Usage:
//!
//! ```console
//! $ cargo run --release -p bench --bin workload_zoo [-- --smoke] [--out PATH]
//! ```

use bench::config_for;
use rmw_types::Atomicity;
use std::fmt::Write as _;
use tso_sim::{Machine, SimResult, SimStats, StepMode};
use workloads::zoo::ZooKernel;

struct Row {
    kernel: ZooKernel,
    atomicity: Atomicity,
    stats: SimStats,
    /// min/max per-core ops among participating cores — 1.0 is perfectly
    /// fair, small values mean some cores starved.
    fairness: f64,
    invariant_ok: bool,
    results_match: bool,
}

fn fairness(r: &SimResult) -> f64 {
    let busy: Vec<u64> = r
        .per_core
        .iter()
        .map(|s| s.ops)
        .filter(|&ops| ops > 0)
        .collect();
    let max = busy.iter().copied().max().unwrap_or(0);
    let min = busy.iter().copied().min().unwrap_or(0);
    if max == 0 {
        return 1.0;
    }
    min as f64 / max as f64
}

/// Cycle ceiling per cell. `paper_table2` leaves `max_cycles` unbounded,
/// and spinning counts as watchdog progress, so a spin-kernel resonance
/// would otherwise hang the bench forever instead of failing a row. The
/// slowest legitimate cell (condvar, iters=12) needs ~4.5M cycles.
const CYCLE_CEILING: u64 = 50_000_000;

fn measure(kernel: ZooKernel, atomicity: Atomicity, n: usize, iters: u64) -> (Row, SimResult) {
    let mut cfg = config_for(n, atomicity);
    cfg.max_cycles = CYCLE_CEILING;
    let traces = kernel.traces(n, iters);
    cfg.step_mode = StepMode::EventDriven;
    let ev = Machine::new(cfg, traces.clone()).run();
    cfg.step_mode = StepMode::Lockstep;
    let ls = Machine::new(cfg, traces).run();
    let results_match = ev.stats == ls.stats
        && ev.per_core == ls.per_core
        && ev.reads == ls.reads
        && ev.memory == ls.memory
        && ev.net == ls.net
        && ev.deadlocked == ls.deadlocked
        && ev.truncated == ls.truncated;
    let invariant_ok = kernel.check(&ev, n, iters).is_ok();
    let row = Row {
        kernel,
        atomicity,
        stats: ev.stats,
        fairness: fairness(&ev),
        invariant_ok,
        results_match,
    };
    (row, ev)
}

fn to_json(
    rows: &[Row],
    invariant: &[(ZooKernel, bool)],
    mode: &str,
    n: usize,
    iters: u64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"workload_zoo\",");
    let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"machine\": {{ \"cores\": {n}, \"table2\": true }},");
    let _ = writeln!(s, "  \"iters_per_core\": {iters},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let st = &r.stats;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"kernel\": \"{}\",", r.kernel);
        let _ = writeln!(s, "      \"atomicity\": \"{}\",", r.atomicity);
        let _ = writeln!(s, "      \"cycles\": {},", st.cycles);
        let _ = writeln!(s, "      \"rmw_count\": {},", st.rmw_count);
        let _ = writeln!(s, "      \"avg_rmw_cost\": {:.3},", st.avg_rmw_cost());
        let _ = writeln!(
            s,
            "      \"rmw_overhead_fraction\": {:.5},",
            st.rmw_overhead_fraction()
        );
        let _ = writeln!(s, "      \"spin_retries\": {},", st.spin_retries);
        let _ = writeln!(s, "      \"spin_cycles\": {},", st.spin_cycles);
        let _ = writeln!(s, "      \"futex_waits\": {},", st.futex_waits);
        let _ = writeln!(s, "      \"futex_immediate\": {},", st.futex_immediate);
        let _ = writeln!(s, "      \"futex_wakes\": {},", st.futex_wakes);
        let _ = writeln!(s, "      \"futex_wakeups\": {},", st.futex_wakeups);
        let _ = writeln!(s, "      \"blocked_cycles\": {},", st.blocked_cycles);
        let _ = writeln!(s, "      \"handoffs\": {},", st.handoffs);
        let _ = writeln!(
            s,
            "      \"avg_wake_to_acquire\": {:.3},",
            st.avg_wake_to_acquire()
        );
        let _ = writeln!(s, "      \"fairness_min_max_ops\": {:.4},", r.fairness);
        let _ = writeln!(s, "      \"invariant_ok\": {},", r.invariant_ok);
        let _ = writeln!(s, "      \"results_match\": {}", r.results_match);
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, (k, outcome_invariant)) in invariant.iter().enumerate() {
        let comma = if i + 1 < invariant.len() { "," } else { "" };
        let by_atomicity: Vec<String> = rows
            .iter()
            .filter(|r| r.kernel == *k)
            .map(|r| format!("\"{}\": {}", r.atomicity, r.stats.cycles))
            .collect();
        let _ = writeln!(
            s,
            "    {{ \"kernel\": \"{k}\", \"outcome_invariant\": {outcome_invariant}, \
             \"cycles_by_atomicity\": {{ {} }} }}{comma}",
            by_atomicity.join(", ")
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn usage() -> ! {
    eprintln!("usage: workload_zoo [--smoke] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_zoo.json".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    usage()
                })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    // The full Table 2 machine in both modes; smoke only trims the
    // per-core iteration count (CI must still cover every cell).
    let n = 32;
    let iters = if smoke { 3 } else { 12 };

    println!(
        "workload_zoo ({}): {} kernels x 3 atomicities on the {n}-core Table 2 machine",
        if smoke { "smoke" } else { "full" },
        ZooKernel::ALL.len()
    );
    println!(
        "{:<18} {:>8} {:>10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>6}",
        "kernel", "atom", "cycles", "rmw cost", "spins", "waits", "handoffs", "fairness", "ok"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut invariant: Vec<(ZooKernel, bool)> = Vec::new();
    let mut failed = false;
    for kernel in ZooKernel::ALL {
        let mut memories = Vec::new();
        for atomicity in Atomicity::ALL {
            let (row, result) = measure(kernel, atomicity, n, iters);
            println!(
                "{:<18} {:>8} {:>10} {:>9.1} {:>8} {:>8} {:>8} {:>9.3} {:>6}",
                row.kernel.name(),
                row.atomicity.to_string(),
                row.stats.cycles,
                row.stats.avg_rmw_cost(),
                row.stats.spin_retries,
                row.stats.futex_waits,
                row.stats.handoffs,
                row.fairness,
                row.invariant_ok && row.results_match
            );
            if !row.invariant_ok || !row.results_match {
                eprintln!(
                    "ERROR: {} {}: invariant_ok={} results_match={}",
                    kernel, atomicity, row.invariant_ok, row.results_match
                );
                failed = true;
            }
            memories.push(result.memory);
            rows.push(row);
        }
        let outcome_invariant = memories.windows(2).all(|w| w[0] == w[1]);
        if !outcome_invariant {
            eprintln!("ERROR: {kernel}: final memory differs between atomicities");
            failed = true;
        }
        invariant.push((kernel, outcome_invariant));
    }

    let json = to_json(
        &rows,
        &invariant,
        if smoke { "smoke" } else { "full" },
        n,
        iters,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_zoo.json");
    println!("\nwrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
