//! Regenerates **Figure 11(b)**: RMW critical-path stalls as a percentage
//! of overall execution time, per benchmark and RMW type.
//!
//! Paper headline: up to 9.0 % (type-2) / 9.2 % (type-3) overall speedup;
//! high-RMW-density programs (bayes, wsq-mst) benefit most; type-3's edge
//! over type-2 is small (<0.5 %).

use bench::{cli_scale, fig11_sweep};

fn main() {
    let (cores, memops) = cli_scale();
    println!("Fig 11(b): RMW share of execution time ({cores} cores, {memops} memops/core)");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>14} {:>14}",
        "benchmark", "type-1 %", "type-2 %", "type-3 %", "t2 speedup %", "t3 speedup %"
    );
    for row in fig11_sweep(cores, memops) {
        let [t1, t2, t3] = &row.by_type;
        let o1 = 100.0 * t1.stats.rmw_overhead_fraction();
        let o2 = 100.0 * t2.stats.rmw_overhead_fraction();
        let o3 = 100.0 * t3.stats.rmw_overhead_fraction();
        let sp2 =
            100.0 * (t1.stats.cycles as f64 - t2.stats.cycles as f64) / t1.stats.cycles as f64;
        let sp3 =
            100.0 * (t1.stats.cycles as f64 - t3.stats.cycles as f64) / t1.stats.cycles as f64;
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>14.2} {:>14.2}",
            row.bench.name(),
            o1,
            o2,
            o3,
            sp2,
            sp3
        );
    }
    println!();
    println!(
        "paper: type-2 up to 9.0% overall improvement (bayes); type-3 adds <0.5% over type-2;"
    );
    println!(
        "       lock-free codes (wsq-mst, bayes) benefit most, low-density codes barely move."
    );
}
