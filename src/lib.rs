//! # fast-rmw-tso
//!
//! A full reproduction of *Fast RMWs for TSO: Semantics and Implementation*
//! (Rajaram, Nagarajan, Sarkar, Elver — PLDI 2013).
//!
//! The paper weakens the atomicity definition of TSO read-modify-write
//! instructions — from the strict **type-1** (no writes at all between the
//! RMW's read and write in the global memory order) to **type-2** (no
//! same-address accesses) and **type-3** (no same-address writes) — derives
//! the resulting ordering semantics, and builds microarchitecture that
//! exploits the weakening to keep the write-buffer drain off the RMW's
//! critical path.
//!
//! This facade crate re-exports the component crates:
//!
//! * [`rmw_types`] — shared vocabulary (addresses, atomicity types, RMW
//!   kinds);
//! * [`tso_model`] — the axiomatic TSO model with type-1/2/3 RMWs (§2),
//!   including executable Lemmas 1–3;
//! * [`litmus`] — the litmus corpus: classic TSO tests plus every Dekker
//!   figure of the paper, with Table 1 regeneration;
//! * [`cc11`] — the C/C++11 fragment, Table 4 mappings, and model-based
//!   Appendix A verification;
//! * [`bloom`] — the Bloom-filter addr-list substrate (§3.2);
//! * [`interconnect`] — the 2D-mesh NoC (Table 2);
//! * [`coherence`] — MOESI distributed-directory coherence with line and
//!   directory locking (§3.1–3.3);
//! * [`tso_sim`] — the CMP timing simulator with all three RMW
//!   implementations and write-deadlock avoidance;
//! * [`workloads`] — benchmark substitutes matched to Table 3;
//! * [`harness`] — the parallel differential litmus harness behind the
//!   `litmus_run` binary.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use fast_rmw_tso::tso_model::{ProgramBuilder, outcome_allowed};
//! use fast_rmw_tso::rmw_types::{Addr, Atomicity, RmwKind};
//!
//! // Dekker's with writes replaced by RMWs (paper Fig. 3) under type-2:
//! // the mutual-exclusion failure is forbidden.
//! let (x, y) = (Addr(0), Addr(1));
//! let mut b = ProgramBuilder::new();
//! b.thread().rmw(x, RmwKind::TestAndSet, Atomicity::Type2).read(y);
//! b.thread().rmw(y, RmwKind::TestAndSet, Atomicity::Type2).read(x);
//! let program = b.build();
//! let failure = outcome_allowed(&program, |r| r[1] == 0 && r[3] == 0);
//! assert!(!failure);
//! ```

#![forbid(unsafe_code)]

pub use bloom;
pub use cc11;
pub use coherence;
pub use harness;
pub use interconnect;
pub use litmus;
pub use rmw_types;
pub use tso_model;
pub use tso_sim;
pub use workloads;
