//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in a hermetic environment with no registry access,
//! so the handful of `rand` APIs the `workloads` crate uses are provided
//! here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range`, `gen_bool`, and `gen_ratio`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! adequate for trace generation (it is not the CSPRNG the real `StdRng`
//! is, which no caller here needs). Integer range sampling uses rejection-free
//! modulo reduction; the tiny bias on non-power-of-two spans is irrelevant
//! for workload synthesis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (e.g. `rng.gen_range(0..10)`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be nonzero");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator > denominator"
        );
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood): a full-period 2^64 sequence.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(rng.gen_ratio(5, 5));
        assert!(!rng.gen_ratio(0, 5));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.25 gave {hits}/20000");
    }
}
