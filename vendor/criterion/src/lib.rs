//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds hermetically (no registry access), so the criterion
//! API surface used by `crates/bench/benches/` is provided here: groups,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs timed batches until the configured measurement budget is
//! spent, and reports the mean wall-clock time per iteration. There are no
//! statistics, plots, or baselines — enough to spot order-of-magnitude
//! regressions and to keep `cargo bench` meaningful without the real crate.
//! Passing `--test` (as `cargo test --benches` does) runs each benchmark
//! once, as a smoke check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state, passed to every `criterion_group!` function.
pub struct Criterion {
    /// Smoke mode: run each benchmark body exactly once, skip measurement.
    test_mode: bool,
    /// Substring filter from the command line (`cargo bench -- <filter>`):
    /// only benchmarks whose full name contains it are run.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the total measurement wall-clock per benchmark. The stand-in
    /// clamps this to one second to keep `cargo bench` runs short.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time.min(Duration::from_secs(1));
        self
    }

    /// Caps warm-up wall-clock per benchmark (clamped likewise).
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time.min(Duration::from_millis(100));
        self
    }

    /// Sets the number of timed samples taken within the budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean_ns: None,
        };
        f(&mut bencher);
        bencher.report(&full_name);
        self
    }

    /// Measures a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the mean nanoseconds per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: also sizes the timed batches so each sample is long
        // enough for the clock to resolve (~1ms), without overshooting the
        // measurement budget on slow routines.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls as f64;
        let batch = ((1_000_000.0 / per_call.max(1.0)) as u64).clamp(1, 1_000_000);

        let budget = self.measurement_time;
        let start = Instant::now();
        let mut total_calls = 0u64;
        let mut samples = 0usize;
        while samples < self.sample_size && start.elapsed() < budget {
            for _ in 0..batch {
                black_box(routine());
            }
            total_calls += batch;
            samples += 1;
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / total_calls as f64);
    }

    fn report(&self, name: &str) {
        match self.mean_ns {
            Some(ns) => println!("{name:<60} time: [{}]", format_ns(ns)),
            None if self.test_mode => println!("{name:<60} (smoke ok)"),
            None => println!("{name:<60} (no measurement taken)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` for a bench target (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_renders_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains("s/iter"));
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            test_mode: false,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            sample_size: 3,
            mean_ns: None,
        };
        b.iter(|| black_box(1u64).wrapping_mul(3));
        assert!(b.mean_ns.is_some());
    }
}
