//! The [`Strategy`] trait and the combinators this workspace's property
//! suites use: ranges, tuples, [`Just`], mapping, and weighted unions.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a strategy
/// simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Types with a canonical "any value" strategy, as in `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` yields arbitrary `u64`s.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// One weighted arm of a [`Union`]: a weight and a boxed generator.
pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted choice between boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut ticket = rng.next_u64() % self.total_weight;
        for (weight, arm) in &self.arms {
            let weight = *weight as u64;
            if ticket < weight {
                return arm(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket below total weight always lands in an arm")
    }
}

/// Weighted (`w => strategy`) or uniform (`strategy`) choice among
/// strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                (
                    $weight as u32,
                    {
                        let strat = $strat;
                        Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                            $crate::strategy::Strategy::generate(&strat, rng)
                        }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                    },
                )
            ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
