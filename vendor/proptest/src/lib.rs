//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds hermetically (no registry access), so the subset of
//! proptest used by the property suites is reimplemented here:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, range / tuple /
//!   [`strategy::Just`] / [`collection::vec()`] / weighted-union strategies
//!   and [`strategy::any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros;
//! * [`test_runner::ProptestConfig`] with per-block `with_cases`.
//!
//! Semantics differences from real proptest, deliberately accepted:
//! inputs are drawn from a deterministic per-test RNG (seeded from the test
//! name, so every run explores the same cases), failing cases are **not
//! shrunk**, and `prop_assert*` panics like `assert*` instead of returning
//! a `TestCaseResult`. Each `#[test]` still runs `cases` generated inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Value-generation strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: a sub-range of possible lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_exclusive - self.lo) as u64;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy, with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    /// Alias of the crate root, as real proptest's prelude provides.
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges_and_maps");
        let s = (1u64..5).prop_map(|v| v * 10);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!([10, 20, 30, 40].contains(&v));
        }
    }

    #[test]
    fn oneof_honors_zero_weight() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![
            1 => Just(1u8),
            0 => Just(2u8),
        ];
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 1u8);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vec_size");
        let s = crate::collection::vec(0u64..3, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The proptest! macro itself: arguments bind, assume filters, and
        /// tuple strategies compose.
        #[test]
        fn macro_smoke(a in 0u32..10, (lo, hi) in (0u64..5, 5u64..10)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && lo < hi);
            prop_assert_eq!(hi - hi, 0);
        }
    }
}
