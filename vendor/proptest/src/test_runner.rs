//! Per-test configuration, the deterministic RNG, and the assertion /
//! harness macros ([`proptest!`], [`prop_assert!`], …).
//!
//! [`proptest!`]: crate::proptest
//! [`prop_assert!`]: crate::prop_assert

/// Configuration for a `proptest!` block, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Matches real proptest's default of 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 RNG driving value generation.
///
/// Each generated test seeds one from the test's name, so a given test
/// explores the same inputs on every run — failures are reproducible by
/// construction (the trade for not having persisted failure seeds).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(expr)]            // optional
///     /// docs / other attributes
///     #[test]
///     fn name(pat1 in strategy1, pat2 in strategy2) { body }
///     ...
/// }
/// ```
///
/// Each function runs `config.cases` times with freshly generated inputs.
/// There is no shrinking: the failing panic reports the proptest case via
/// the generated inputs' `Debug` in the assertion message, if the body
/// includes them.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn, recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            // Build the strategies once; a tuple of strategies is itself a
            // strategy, so each case draws all arguments from it at once.
            let strategies = ($(($strat),)+);
            for _case in 0..config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                // The closure gives prop_assume! an early-exit `return`.
                #[allow(unused_mut)]
                let mut one_case = || $body;
                let _: () = one_case();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a proptest body (panics on failure; real
/// proptest would record and shrink instead).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}
