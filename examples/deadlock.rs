//! Demonstrates the paper's Figure 10 write-deadlock and its avoidance.
//!
//! The program `W(x); RMW(y) || W(y); RMW(x)` with type-2 RMWs can
//! cross-lock: each core's pending write targets the line the *other* core
//! has locked, and each lock is only released by a write stuck behind that
//! pending write. The Bloom-filter addr-list (§3.2) detects the pattern and
//! reverts the RMW to a type-1-style drain.
//!
//! Run with: `cargo run --example deadlock`

use fast_rmw_tso::rmw_types::{Addr, Atomicity};
use fast_rmw_tso::tso_sim::{Machine, Op, SimConfig, Trace};

fn run(bloom_enabled: bool) -> fast_rmw_tso::tso_sim::SimResult {
    let mut cfg = SimConfig::small(2);
    cfg.rmw_atomicity = Atomicity::Type2;
    cfg.bloom_enabled = bloom_enabled;
    cfg.deadlock_threshold = 20_000;
    let x = Addr(0);
    let y = Addr(64);
    let t0 = Trace::new(vec![Op::write(x, 1), Op::rmw(y)]);
    let t1 = Trace::new(vec![Op::write(y, 1), Op::rmw(x)]);
    Machine::new(cfg, vec![t0, t1]).run()
}

fn main() {
    println!("Fig. 10:  P0: W(x); RMW(y)   ||   P1: W(y); RMW(x)   (type-2 RMWs)\n");

    let unsafe_run = run(false);
    println!("without addr-list (bloom disabled):");
    println!("  deadlocked = {}", unsafe_run.deadlocked);
    assert!(unsafe_run.deadlocked, "the write-deadlock must manifest");

    let safe_run = run(true);
    println!("\nwith the Bloom-filter addr-list (paper §3.2):");
    println!("  deadlocked = {}", safe_run.deadlocked);
    println!("  RMW broadcasts = {}", safe_run.stats.rmw_broadcasts);
    println!("  reverted drains = {}", safe_run.stats.rmw_drains);
    assert!(!safe_run.deadlocked);
    assert!(safe_run.stats.rmw_drains >= 1);

    println!("\nThe conflicting pending write hit the addr-list, so the RMW");
    println!("reverted to a type-1 drain and the cycle never formed — exactly");
    println!("the c1/c2 argument of the paper's deadlock-avoidance proof.");
}
