//! Every Dekker scenario of the paper (Figures 1, 3, 4, 5, 8) checked
//! against the axiomatic model under all three atomicity definitions —
//! reproducing the hardware-idiom columns of Table 1.
//!
//! Run with: `cargo run --example dekker`

use fast_rmw_tso::litmus::{paper, Litmus};
use fast_rmw_tso::rmw_types::Atomicity;

fn verdict(l: &Litmus) -> &'static str {
    let r = l.check();
    assert!(r.passed, "{} disagrees with the paper", r.name);
    if r.observed_allowed {
        "fails (violation observable)"
    } else {
        "works (violation forbidden)"
    }
}

/// A named paper scenario, parameterized by the RMW atomicity.
type Scenario = (&'static str, fn(Atomicity) -> Litmus);

fn main() {
    println!("{}", paper::dekker_plain().description);
    let plain = paper::dekker_plain();
    println!("  plain Dekker on TSO: {}\n", verdict(&plain));

    let scenarios: [Scenario; 4] = [
        (
            "Fig 4: reads replaced by RMWs",
            paper::dekker_read_replacement,
        ),
        (
            "Fig 3: writes replaced by RMWs",
            paper::dekker_write_replacement,
        ),
        (
            "Fig 5: RMWs as barriers (different addresses)",
            paper::dekker_rmw_barriers_diff_addr,
        ),
        (
            "Fig 8: RMWs as barriers (same address)",
            paper::dekker_rmw_barriers_same_addr,
        ),
    ];
    for (title, mk) in scenarios {
        println!("{title}");
        for a in Atomicity::ALL {
            println!("  {a}: {}", verdict(&mk(a)));
        }
        println!();
    }
    println!("(matches paper Table 1: type-2 loses only the barrier idiom;");
    println!(" type-3 additionally loses write replacement.)");
}
