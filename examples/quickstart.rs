//! Quickstart: the three faces of the library in one file.
//!
//! 1. Ask the axiomatic model a question (is an outcome allowed?).
//! 2. Verify a C/C++11 compilation mapping.
//! 3. Run the timing simulator and compare RMW implementations.
//!
//! Run with: `cargo run --example quickstart`

use fast_rmw_tso::cc11::{ast::CcProgramBuilder, mapping::Mapping, verify::verify_mapping};
use fast_rmw_tso::rmw_types::{Addr, Atomicity, RmwKind};
use fast_rmw_tso::tso_model::{outcome_allowed, ProgramBuilder};
use fast_rmw_tso::tso_sim::{Machine, Op, SimConfig, Trace};

fn main() {
    let (x, y) = (Addr(0), Addr(1));

    // --- 1. The axiomatic model ------------------------------------------
    // Store buffering: TSO allows both reads to miss both writes...
    let mut b = ProgramBuilder::new();
    b.thread().write(x, 1).read(y);
    b.thread().write(y, 1).read(x);
    let sb = b.build();
    println!(
        "SB 0/0 allowed on TSO?            {}",
        outcome_allowed(&sb, |r| r == [0, 0])
    );

    // ...but replacing the reads with type-3 RMWs forbids it (Fig. 4).
    let mut b = ProgramBuilder::new();
    b.thread()
        .write(x, 1)
        .rmw(y, RmwKind::FetchAndAdd(0), Atomicity::Type3);
    b.thread()
        .write(y, 1)
        .rmw(x, RmwKind::FetchAndAdd(0), Atomicity::Type3);
    let dekker = b.build();
    println!(
        "Dekker-rr 0/0 allowed (type-3)?   {}",
        outcome_allowed(&dekker, |r| r == [0, 0])
    );

    // --- 2. C/C++11 mapping verification ---------------------------------
    let mut b = CcProgramBuilder::new();
    b.thread().sc_write(x, 1).sc_read(y);
    b.thread().sc_write(y, 1).sc_read(x);
    let cc_sb = b.build();
    println!(
        "read-mapping sound with type-3?   {}",
        verify_mapping(&cc_sb, Mapping::Read, Atomicity::Type3).is_ok()
    );
    println!(
        "write-mapping sound with type-3?  {}",
        verify_mapping(&cc_sb, Mapping::Write, Atomicity::Type3).is_ok()
    );

    // --- 3. The timing simulator ------------------------------------------
    // A core with pending writes hits an RMW: type-1 drains, type-2 doesn't.
    for atomicity in Atomicity::ALL {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = atomicity;
        let trace = Trace::new(vec![
            Op::write(Addr(64), 1),
            Op::write(Addr(128), 2),
            Op::write(Addr(192), 3),
            Op::rmw(Addr(256)),
            Op::read(Addr(320)),
        ]);
        let r = Machine::new(cfg, vec![trace]).run();
        println!(
            "{atomicity}: RMW cost {:>5.1} cycles (write-buffer {:>3}, Ra/Wa {:>3})",
            r.stats.avg_rmw_cost(),
            r.stats.rmw_cost.write_buffer_cycles,
            r.stats.rmw_cost.ra_wa_cycles,
        );
    }
}
