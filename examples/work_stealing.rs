//! The paper's C/C++11 case study: the work-stealing spanning-tree program
//! (`wsq-mst`) with SC atomics compiled via read-replacement (`rr`) or
//! write-replacement (`wr`), simulated under each RMW implementation.
//!
//! Run with: `cargo run --release --example work_stealing [cores] [memops]`

use fast_rmw_tso::rmw_types::Atomicity;
use fast_rmw_tso::tso_sim::Machine;
use fast_rmw_tso::workloads::{benchmark, Benchmark};

fn main() {
    let mut args = std::env::args().skip(1);
    let cores: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let memops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_000);

    println!("wsq-mst under each C/C++11 compilation and RMW type");
    println!("({cores} cores, {memops} memops/core)\n");
    println!(
        "{:<12} {:<8} {:>12} {:>14} {:>12}",
        "variant", "rmw", "avg RMW cost", "total cycles", "broadcasts"
    );
    for bench in [Benchmark::WsqMstWr, Benchmark::WsqMstRr] {
        for atomicity in Atomicity::ALL {
            // The paper skips type-3 for write-replacement: unsound (§2.5).
            if bench == Benchmark::WsqMstWr && atomicity == Atomicity::Type3 {
                println!(
                    "{:<12} {:<8} {:>12} {:>14} {:>12}",
                    bench.name(),
                    "type-3",
                    "—",
                    "(unsound)",
                    "—"
                );
                continue;
            }
            let mut cfg = fast_rmw_tso::tso_sim::SimConfig::paper_table2();
            cfg.coherence.num_cores = cores;
            cfg.coherence.mesh.width = cores.max(2).div_ceil(2);
            cfg.coherence.mesh.height = 2;
            cfg.rmw_atomicity = atomicity;
            let traces = benchmark(bench, cores, memops, 0xBEEF);
            let r = Machine::new(cfg, traces).run();
            assert!(!r.deadlocked);
            println!(
                "{:<12} {:<8} {:>12.1} {:>14} {:>12}",
                bench.name(),
                atomicity.to_string(),
                r.stats.avg_rmw_cost(),
                r.stats.cycles,
                r.stats.rmw_broadcasts
            );
        }
    }
    println!("\npaper: rr RMWs cost more than wr (more buffered writes per RMW);");
    println!("       best overall = read-replacement with type-3 RMWs.");
}
