//! Regenerates the paper's **Table 1** in full: the hardware synchronization
//! idioms (from the litmus corpus + axiomatic model) and the C/C++11
//! mapping columns (from the model-based mapping verifier).
//!
//! Run with: `cargo run --example table1`

use fast_rmw_tso::cc11::{verify::corpus, verify_mapping, Mapping};
use fast_rmw_tso::litmus::table1;
use fast_rmw_tso::rmw_types::Atomicity;

fn tick(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

fn main() {
    println!("Table 1: Conventional RMW (type-1) vs proposed RMWs (type-2, type-3)\n");
    println!(
        "{:<10} {:>14} {:>15} {:>12} {:>16} {:>17}",
        "Atomicity",
        "Dekker reads",
        "Dekker writes",
        "RMWs as",
        "C/C++11 SC-reads",
        "C/C++11 SC-writes"
    );
    println!(
        "{:<10} {:>14} {:>15} {:>12} {:>16} {:>17}",
        "", "replaced?", "replaced?", "barriers?", "→ RMWs?", "→ RMWs?"
    );

    let rows = table1();
    for row in &rows {
        let cc_reads = corpus()
            .iter()
            .all(|(_, p)| verify_mapping(p, Mapping::Read, row.atomicity).is_ok());
        let cc_writes = corpus()
            .iter()
            .all(|(_, p)| verify_mapping(p, Mapping::Write, row.atomicity).is_ok());
        println!(
            "{:<10} {:>14} {:>15} {:>12} {:>16} {:>17}",
            row.atomicity.to_string(),
            tick(row.dekker_reads),
            tick(row.dekker_writes),
            tick(row.rmws_as_barriers),
            tick(cc_reads),
            tick(cc_writes),
        );
    }

    // Cross-check against the paper's printed matrix.
    let expect = [
        (Atomicity::Type1, [true, true, true, true, true]),
        (Atomicity::Type2, [true, true, false, true, true]),
        (Atomicity::Type3, [true, false, false, true, false]),
    ];
    for ((a, e), row) in expect.iter().zip(&rows) {
        assert_eq!(row.atomicity, *a);
        assert_eq!(
            [
                row.dekker_reads,
                row.dekker_writes,
                row.rmws_as_barriers,
                corpus()
                    .iter()
                    .all(|(_, p)| verify_mapping(p, Mapping::Read, *a).is_ok()),
                corpus()
                    .iter()
                    .all(|(_, p)| verify_mapping(p, Mapping::Write, *a).is_ok()),
            ],
            *e,
            "{a} row deviates from the paper"
        );
    }
    println!("\nall rows match the paper ✓");
}
