//! Reproduces Table 4 / Appendix A: which C/C++11 → TSO compilation
//! mappings are sound with which RMW atomicity, verified model-based on
//! the corpus.
//!
//! Run with: `cargo run --example cc11_mapping`

use fast_rmw_tso::cc11::{verify::corpus, verify_mapping, Mapping};
use fast_rmw_tso::rmw_types::Atomicity;

fn main() {
    println!(
        "C/C++11 mapping soundness (model-checked on {} programs)\n",
        corpus().len()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "mapping", "type-1", "type-2", "type-3"
    );
    for mapping in Mapping::ALL {
        let mut row = format!("{mapping:<22}");
        for atomicity in Atomicity::ALL {
            let sound = corpus()
                .iter()
                .all(|(_, p)| verify_mapping(p, mapping, atomicity).is_ok());
            assert_eq!(
                sound,
                mapping.sound_for(atomicity),
                "model disagrees with the paper for {mapping} × {atomicity}"
            );
            row.push_str(&format!(" {:>8}", if sound { "ok" } else { "UNSOUND" }));
        }
        println!("{row}");
    }

    println!();
    // Show the concrete counterexample for write-mapping × type-3.
    let (_, sb) = corpus().remove(0);
    let err = verify_mapping(&sb, Mapping::Write, Atomicity::Type3)
        .expect_err("the paper's negative result");
    println!("counterexample: {err}");
    println!("(this is Dekker's failure of paper Fig. 3 surfacing through the mapping)");
}
