//! Integration-level checks of the paper's semantic results: the complete
//! Table 1 matrix, the full litmus corpus, and the Fig. 10 deadlock pair —
//! everything in one place, across crate boundaries.

use fast_rmw_tso::cc11::{verify::corpus, verify_mapping, Mapping};
use fast_rmw_tso::litmus::{classic, paper, run_all, table1};
use fast_rmw_tso::rmw_types::{Addr, Atomicity};
use fast_rmw_tso::tso_sim::{Machine, Op, SimConfig, Trace};

#[test]
fn full_litmus_corpus_passes() {
    let mut tests = classic::all();
    tests.extend(paper::all());
    let failures = run_all(&tests);
    assert!(
        failures.is_empty(),
        "litmus failures: {:?}",
        failures.iter().map(|f| &f.name).collect::<Vec<_>>()
    );
}

#[test]
fn table1_complete_matrix() {
    // Hardware idiom columns.
    let rows = table1();
    let expect_hw = [
        (Atomicity::Type1, true, true, true),
        (Atomicity::Type2, true, true, false),
        (Atomicity::Type3, true, false, false),
    ];
    for (row, (a, reads, writes, barriers)) in rows.iter().zip(expect_hw) {
        assert_eq!(row.atomicity, a);
        assert_eq!(row.dekker_reads, reads, "{a} dekker-reads");
        assert_eq!(row.dekker_writes, writes, "{a} dekker-writes");
        assert_eq!(row.rmws_as_barriers, barriers, "{a} barriers");
    }
    // C/C++11 columns.
    for a in Atomicity::ALL {
        let sc_reads_ok = corpus()
            .iter()
            .all(|(_, p)| verify_mapping(p, Mapping::Read, a).is_ok());
        let sc_writes_ok = corpus()
            .iter()
            .all(|(_, p)| verify_mapping(p, Mapping::Write, a).is_ok());
        assert!(sc_reads_ok, "{a}: SC-read replacement must be sound");
        assert_eq!(
            sc_writes_ok,
            a != Atomicity::Type3,
            "{a}: SC-write replacement soundness"
        );
    }
}

#[test]
fn fig10_deadlock_manifests_and_is_avoided_for_both_weak_types() {
    for atomicity in [Atomicity::Type2, Atomicity::Type3] {
        let mk = |bloom: bool| {
            let mut cfg = SimConfig::small(2);
            cfg.rmw_atomicity = atomicity;
            cfg.bloom_enabled = bloom;
            cfg.deadlock_threshold = 20_000;
            let t0 = Trace::new(vec![Op::write(Addr(0), 1), Op::rmw(Addr(64))]);
            let t1 = Trace::new(vec![Op::write(Addr(64), 1), Op::rmw(Addr(0))]);
            Machine::new(cfg, vec![t0, t1]).run()
        };
        assert!(mk(false).deadlocked, "{atomicity}: deadlock must manifest");
        let safe = mk(true);
        assert!(!safe.deadlocked, "{atomicity}: addr-list must prevent it");
        // Atomicity preserved even through the recovery: both FAA(1)s land.
        assert_eq!(safe.memory.get(&Addr(0)), Some(&2));
        assert_eq!(safe.memory.get(&Addr(64)), Some(&2));
    }
}

#[test]
fn lemma_results_visible_across_crates() {
    use fast_rmw_tso::tso_model::lemmas::{ordering_enforced, valid_candidates};
    use fast_rmw_tso::tso_model::ProgramBuilder;
    use rmw_types::RmwKind;

    // Lemma 1 via the public API: W1 → R2 enforced around a type-1 RMW.
    let mut b = ProgramBuilder::new();
    b.thread()
        .write(Addr(0), 1)
        .rmw(Addr(2), RmwKind::TestAndSet, Atomicity::Type1)
        .read(Addr(1));
    b.thread().write(Addr(1), 1);
    let p = b.build();
    for c in valid_candidates(&p) {
        let w1 = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write() && e.rmw.is_none())
            .unwrap()
            .id;
        let r2 = c
            .events()
            .iter()
            .find(|e| e.is_read() && e.rmw.is_none() && e.tid == Some(rmw_types::ThreadId(0)))
            .unwrap()
            .id;
        assert!(ordering_enforced(&c, w1, r2));
    }
}
