//! End-to-end integration: the paper's headline claims hold on the full
//! pipeline (workload generator → simulator → stats), at test scale.

use fast_rmw_tso::rmw_types::Atomicity;
use fast_rmw_tso::tso_sim::{Machine, SimConfig, SimResult};
use fast_rmw_tso::workloads::{benchmark, Benchmark};

fn run(bench: Benchmark, atomicity: Atomicity, cores: usize, memops: usize) -> SimResult {
    let mut cfg = SimConfig::paper_table2();
    cfg.coherence.num_cores = cores;
    cfg.coherence.mesh.width = cores.div_ceil(2).max(1);
    cfg.coherence.mesh.height = 2;
    cfg.rmw_atomicity = atomicity;
    let traces = benchmark(bench, cores, memops, 7);
    let r = Machine::new(cfg, traces).run();
    assert!(!r.deadlocked, "{bench} {atomicity}");
    r
}

/// Paper Fig. 11(a): type-2 RMWs are substantially cheaper than type-1 on
/// every benchmark, and type-3 at least as cheap as type-2 (up to noise).
#[test]
fn weaker_rmws_are_cheaper_everywhere() {
    for bench in Benchmark::ALL {
        let t1 = run(bench, Atomicity::Type1, 4, 4_000).stats.avg_rmw_cost();
        let t2 = run(bench, Atomicity::Type2, 4, 4_000).stats.avg_rmw_cost();
        let t3 = run(bench, Atomicity::Type3, 4, 4_000).stats.avg_rmw_cost();
        let saving2 = 100.0 * (t1 - t2) / t1;
        assert!(
            saving2 > 20.0,
            "{bench}: type-2 saving only {saving2:.1}% (t1={t1:.1}, t2={t2:.1})"
        );
        assert!(
            t3 < t2 * 1.10,
            "{bench}: type-3 ({t3:.1}) should not cost more than type-2 ({t2:.1})"
        );
    }
}

/// Paper Fig. 11(a): the write-buffer drain dominates type-1 RMW cost.
#[test]
fn type1_cost_is_drain_dominated() {
    let mut shares = Vec::new();
    for bench in Benchmark::ALL {
        let r = run(bench, Atomicity::Type1, 4, 4_000);
        shares.push(r.stats.rmw_cost.write_buffer_cycles as f64 / r.stats.rmw_cost.total() as f64);
    }
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(
        (0.35..0.85).contains(&avg),
        "avg write-buffer share {avg:.2} out of the paper's ballpark (~0.58)"
    );
}

/// Paper Table 3: type-2/3 RMWs almost never revert to a drain.
#[test]
fn reverted_drains_are_rare() {
    for bench in Benchmark::ALL {
        let r = run(bench, Atomicity::Type2, 4, 4_000);
        assert!(
            r.stats.pct_drains() < 25.0,
            "{bench}: {:.1}% of type-2 RMWs drained",
            r.stats.pct_drains()
        );
    }
}

/// Paper Table 3: broadcasts per 100 RMWs tracks the unique-RMW rate and
/// stays small.
#[test]
fn broadcast_rate_tracks_uniqueness() {
    for bench in Benchmark::ALL {
        let r = run(bench, Atomicity::Type2, 4, 4_000);
        let b = r.stats.broadcasts_per_100();
        let u = r.stats.pct_unique_rmws();
        assert!(
            b <= u * 4.0 + 1.5,
            "{bench}: broadcasts {b:.2} ≫ unique {u:.2}"
        );
        assert!(b < 10.0, "{bench}: broadcast rate {b:.2} too high");
    }
}

/// Paper Fig. 11(b): overall execution time improves with weaker RMWs, and
/// the gain is largest for RMW-dense programs.
#[test]
fn execution_time_improves_with_weaker_rmws() {
    let mut improvements = Vec::new();
    for bench in [Benchmark::Bayes, Benchmark::Raytrace, Benchmark::WsqMstRr] {
        let t1 = run(bench, Atomicity::Type1, 4, 4_000).stats.cycles;
        let t2 = run(bench, Atomicity::Type2, 4, 4_000).stats.cycles;
        assert!(t2 <= t1, "{bench}: type-2 slower overall");
        improvements.push((bench, 100.0 * (t1 - t2) as f64 / t1 as f64));
    }
    // The densest benchmark should improve measurably.
    assert!(
        improvements.iter().any(|(_, imp)| *imp > 2.0),
        "no benchmark improved >2%: {improvements:?}"
    );
}

/// The §1 hypothesis: a fence after each RMW is nearly free under type-1
/// (the RMW already drained) but costs real time under type-2.
#[test]
fn fence_after_rmw_hypothesis() {
    let bench = Benchmark::Radiosity;
    let cycles = |atomicity, fence| {
        let mut cfg = SimConfig::paper_table2();
        cfg.coherence.num_cores = 4;
        cfg.coherence.mesh.width = 2;
        cfg.coherence.mesh.height = 2;
        cfg.rmw_atomicity = atomicity;
        cfg.fence_after_rmw = fence;
        let traces = benchmark(bench, 4, 4_000, 7);
        let r = Machine::new(cfg, traces).run();
        assert!(!r.deadlocked);
        r.stats.cycles as f64
    };
    let t1_delta = cycles(Atomicity::Type1, true) / cycles(Atomicity::Type1, false);
    let t2_delta = cycles(Atomicity::Type2, true) / cycles(Atomicity::Type2, false);
    assert!(
        t1_delta < 1.10,
        "fence after type-1 RMW should be ~free: ×{t1_delta:.3}"
    );
    assert!(
        t2_delta > t1_delta,
        "fence must hurt type-2 ({t2_delta:.3}) more than type-1 ({t1_delta:.3})"
    );
}

/// Determinism across the full pipeline.
#[test]
fn full_pipeline_is_deterministic() {
    let a = run(Benchmark::Genome, Atomicity::Type3, 4, 2_000);
    let b = run(Benchmark::Genome, Atomicity::Type3, 4, 2_000);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.reads, b.reads);
}
