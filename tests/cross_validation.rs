//! Cross-validation: every outcome the operational timing simulator
//! produces must be allowed by the axiomatic TSO model.
//!
//! The simulator is deterministic, so each (program, atomicity) pair yields
//! one concrete outcome; the model enumerates the full allowed set. The
//! simulator disagreeing with the model on any program would mean one of
//! the two halves of the reproduction is wrong.
//!
//! The model→sim lowering lives in `tso_sim::lower` (shared with the
//! `harness` crate's 500+ test batch runner and the property-based
//! differential suite); these hand-picked shapes stay as the readable,
//! named core of the differential contract.

use fast_rmw_tso::rmw_types::{Addr, Atomicity, RmwKind, Value};
use fast_rmw_tso::tso_model::{allowed_outcomes, Program, ProgramBuilder};
use fast_rmw_tso::tso_sim::{lower_with_line_size, sim_addr, Machine, SimConfig};

/// Runs the simulator and checks its outcome against the model.
fn check(program: &Program, name: &str) {
    for atomicity in Atomicity::ALL {
        // Align the model program and the machine on one atomicity.
        let model_prog = program.with_atomicity(atomicity);
        let mut cfg = SimConfig::small(model_prog.num_threads().max(1));
        cfg.rmw_atomicity = atomicity;
        let line_size = cfg.line_size;
        let result = Machine::new(cfg, lower_with_line_size(&model_prog, line_size)).run();
        assert!(!result.deadlocked, "{name} ({atomicity}): deadlock");

        let sim_reads: Vec<Value> = result.reads.iter().flatten().copied().collect();
        let allowed = allowed_outcomes(&model_prog);
        assert!(
            allowed.iter().any(|o| o.read_values() == sim_reads),
            "{name} ({atomicity}): simulator outcome {sim_reads:?} not in model set {:?}",
            allowed.iter().map(|o| o.read_values()).collect::<Vec<_>>()
        );
        // Final memory must agree too.
        let sim_mem_of = |a: Addr| {
            result
                .memory
                .get(&sim_addr(a, line_size))
                .copied()
                .unwrap_or(0)
        };
        assert!(
            allowed.iter().any(|o| {
                o.read_values() == sim_reads
                    && o.final_memory().iter().all(|&(a, v)| sim_mem_of(a) == v)
            }),
            "{name} ({atomicity}): final memory disagrees with every matching model outcome"
        );
    }
}

const X: fast_rmw_tso::rmw_types::Addr = Addr(0);
const Y: fast_rmw_tso::rmw_types::Addr = Addr(1);
const Z: fast_rmw_tso::rmw_types::Addr = Addr(2);

#[test]
fn store_buffering() {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).read(Y);
    b.thread().write(Y, 1).read(X);
    check(&b.build(), "SB");
}

#[test]
fn message_passing() {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).write(Y, 1);
    b.thread().read(Y).read(X);
    check(&b.build(), "MP");
}

#[test]
fn fenced_store_buffering() {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).fence().read(Y);
    b.thread().write(Y, 1).fence().read(X);
    check(&b.build(), "SB+fences");
}

#[test]
fn dekker_read_replacement() {
    let mut b = ProgramBuilder::new();
    b.thread()
        .write(X, 1)
        .rmw(Y, RmwKind::FetchAndAdd(0), Atomicity::Type1);
    b.thread()
        .write(Y, 1)
        .rmw(X, RmwKind::FetchAndAdd(0), Atomicity::Type1);
    check(&b.build(), "dekker-rr");
}

#[test]
fn dekker_write_replacement() {
    let mut b = ProgramBuilder::new();
    b.thread()
        .rmw(X, RmwKind::TestAndSet, Atomicity::Type1)
        .read(Y);
    b.thread()
        .rmw(Y, RmwKind::TestAndSet, Atomicity::Type1)
        .read(X);
    check(&b.build(), "dekker-wr");
}

#[test]
fn contended_counter() {
    let mut b = ProgramBuilder::new();
    b.thread()
        .rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1)
        .rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1);
    b.thread().rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1);
    check(&b.build(), "counter");
}

#[test]
fn mixed_fence_rmw_three_threads() {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).fence().read(Y);
    b.thread()
        .rmw(Y, RmwKind::Exchange(7), Atomicity::Type1)
        .read(Z);
    b.thread()
        .write(Z, 2)
        .rmw(X, RmwKind::TestAndSet, Atomicity::Type1);
    check(&b.build(), "mixed3");
}

#[test]
fn write_chain_with_forwarding() {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).write(X, 2).read(X).write(Y, 1);
    b.thread().read(Y).read(X);
    check(&b.build(), "forwarding");
}

#[test]
fn rmw_chain_same_address() {
    let mut b = ProgramBuilder::new();
    b.thread()
        .rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1)
        .rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1)
        .read(X);
    check(&b.build(), "rmw-chain");
}

#[test]
fn cas_success_and_failure() {
    let mut b = ProgramBuilder::new();
    b.thread().rmw(
        X,
        RmwKind::CompareAndSwap {
            expected: 0,
            new: 5,
        },
        Atomicity::Type1,
    );
    b.thread().rmw(
        X,
        RmwKind::CompareAndSwap {
            expected: 0,
            new: 9,
        },
        Atomicity::Type1,
    );
    check(&b.build(), "cas-race");
}
