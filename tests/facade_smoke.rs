//! Smoke test for the `fast-rmw-tso` facade: every re-exported component
//! crate's core entry point must be reachable through the facade paths the
//! README quickstart and examples use. This is the test that fails first if
//! a re-export or a workspace dependency edge goes missing.

use fast_rmw_tso::bloom::BloomFilter;
use fast_rmw_tso::cc11::{verify::corpus, verify_mapping, Mapping};
use fast_rmw_tso::coherence::{CoherenceConfig, CoherenceSystem};
use fast_rmw_tso::interconnect::{Mesh, MeshConfig};
use fast_rmw_tso::litmus;
use fast_rmw_tso::rmw_types::{Addr, Atomicity, RmwKind};
use fast_rmw_tso::tso_model::{outcome_allowed, ProgramBuilder};
use fast_rmw_tso::tso_sim::{Machine, Op, SimConfig, Trace};
use fast_rmw_tso::workloads::{self, Benchmark};

/// The builder compiles a program, and the model answers outcome queries —
/// the README quickstart, end to end (Dekker-with-RMWs under type-2).
#[test]
fn model_builder_entry_point() {
    let (x, y) = (Addr(0), Addr(1));
    let mut b = ProgramBuilder::new();
    b.thread()
        .rmw(x, RmwKind::TestAndSet, Atomicity::Type2)
        .read(y);
    b.thread()
        .rmw(y, RmwKind::TestAndSet, Atomicity::Type2)
        .read(x);
    let program = b.build();
    assert!(!outcome_allowed(&program, |r| r[1] == 0 && r[3] == 0));
}

/// Both litmus corpora are non-empty and pass their expectations.
#[test]
fn litmus_corpus_entry_point() {
    let classic = litmus::classic::all();
    let paper = litmus::paper::all();
    assert!(!classic.is_empty(), "classic corpus is empty");
    assert!(!paper.is_empty(), "paper corpus is empty");
    assert!(litmus::run_all(&classic).is_empty());
    assert!(litmus::run_all(&paper).is_empty());
}

/// Table 1 regenerates with one row per atomicity type.
#[test]
fn table1_regenerates() {
    let rows = litmus::table1();
    assert_eq!(rows.len(), 3);
    let types: Vec<Atomicity> = rows.iter().map(|r| r.atomicity).collect();
    assert_eq!(
        types,
        vec![Atomicity::Type1, Atomicity::Type2, Atomicity::Type3]
    );
}

/// The C/C++11 verifier runs over its corpus and accepts a sound mapping.
#[test]
fn cc11_entry_point() {
    assert!(!corpus().is_empty());
    for (_, program) in corpus() {
        assert!(verify_mapping(&program, Mapping::ReadWrite, Atomicity::Type1).is_ok());
    }
}

/// The substrates construct and answer queries: Bloom filter, mesh,
/// coherence system.
#[test]
fn substrate_entry_points() {
    let mut filter = BloomFilter::paper_config();
    assert!(filter.insert(42));
    assert!(filter.maybe_contains(42));

    let mesh = Mesh::new(MeshConfig::paper_32());
    assert!(mesh.latency(0, 31) > 0);

    let mut coherence = CoherenceSystem::new(CoherenceConfig::small(4));
    assert!(coherence.read(0, Addr(0).line(64), 0).is_ok());
    assert!(coherence.check_invariants().is_ok());
}

/// The simulator runs a tiny trace mix to completion.
#[test]
fn simulator_entry_point() {
    let traces = vec![
        Trace::new(vec![
            Op::Write(Addr(0), 1),
            Op::Rmw(Addr(64), RmwKind::FetchAndAdd(1)),
            Op::Fence,
        ]),
        Trace::new(vec![Op::Read(Addr(0)), Op::Read(Addr(64))]),
    ];
    let result = Machine::new(SimConfig::small(2), traces).run();
    assert!(!result.deadlocked);
    assert!(result.stats.cycles > 0);
}

/// The workload generators produce non-empty traces for every benchmark.
#[test]
fn workloads_entry_point() {
    for bench in Benchmark::ALL {
        let traces = workloads::benchmark(bench, 2, 200, 0xD15EA5E);
        assert_eq!(traces.len(), 2, "{bench} trace count");
        assert!(
            traces.iter().any(|t| !t.ops().is_empty()),
            "{bench} produced empty traces"
        );
    }
}
